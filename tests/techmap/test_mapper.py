"""Tests for the glitch-aware LUT mapper."""

import random

import pytest

from repro.errors import MappingError
from repro.netlist.gates import GateType, Netlist
from repro.netlist.library import (
    build_adder,
    build_multiplier,
    build_partial_datapath,
    build_register,
)
from repro.netlist.transform import clean
from repro.techmap import map_netlist

from tests.conftest import evaluate_netlist


def assert_equivalent(original: Netlist, mapped: Netlist, seed: int = 0):
    rng = random.Random(seed)
    for _ in range(30):
        assignment = {pi: rng.random() < 0.5 for pi in original.inputs}
        expected = evaluate_netlist(original, assignment)
        actual = evaluate_netlist(mapped, assignment)
        for out in original.outputs:
            assert actual[out] == expected[out], out


class TestCorrectness:
    def test_adder_equivalence(self):
        netlist = build_adder(6)
        clean(netlist)
        result = map_netlist(netlist)
        assert_equivalent(netlist, result.netlist)

    def test_multiplier_equivalence(self):
        netlist = build_multiplier(4)
        clean(netlist)
        result = map_netlist(netlist)
        assert_equivalent(netlist, result.netlist)

    def test_partial_datapath_equivalence(self):
        netlist = build_partial_datapath("mult", 3, 2, 4)
        clean(netlist)
        result = map_netlist(netlist)
        assert_equivalent(netlist, result.netlist)

    def test_k_bound_respected(self):
        netlist = build_adder(8)
        clean(netlist)
        for k in (3, 4, 5):
            result = map_netlist(netlist, k=k)
            widest = max(
                len(gate.inputs) for gate in result.netlist.gates.values()
            )
            assert widest <= k

    def test_latches_preserved(self):
        netlist = build_register(3)
        result = map_netlist(netlist)
        assert result.netlist.num_latches() == 3
        assert set(result.netlist.outputs) == set(netlist.outputs)

    def test_output_names_survive(self):
        netlist = build_adder(4)
        clean(netlist)
        result = map_netlist(netlist)
        assert result.netlist.outputs == netlist.outputs

    def test_constant_node_mapped(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        one = netlist.add_const(True, "one")
        y = netlist.add_simple(GateType.AND, (a, one), "y")
        netlist.set_output(y)
        result = map_netlist(netlist)
        assert_equivalent(netlist, result.netlist)


class TestQuality:
    def test_mapping_reduces_node_count(self):
        netlist = build_adder(8)
        clean(netlist)
        result = map_netlist(netlist)
        assert result.area < netlist.num_gates()

    def test_area_counts_luts(self):
        netlist = build_adder(4)
        clean(netlist)
        result = map_netlist(netlist)
        assert result.area == result.netlist.num_gates()

    def test_depth_le_gate_depth(self):
        netlist = build_multiplier(4)
        clean(netlist)
        result = map_netlist(netlist)
        assert result.depth <= netlist.depth()
        assert result.depth >= 1

    def test_sa_accounting_consistent(self):
        netlist = build_adder(5)
        clean(netlist)
        result = map_netlist(netlist)
        assert result.total_sa == pytest.approx(sum(result.lut_sa.values()))
        assert result.glitch_sa == pytest.approx(
            result.total_sa - result.functional_sa
        )
        assert 0.0 <= result.glitch_fraction <= 1.0

    def test_glitch_blind_mode_reports_no_glitch(self):
        netlist = build_adder(5)
        clean(netlist)
        result = map_netlist(netlist, glitch_aware=False)
        assert result.glitch_sa == pytest.approx(0.0)

    def test_glitch_aware_estimate_higher(self):
        """The glitch-aware model must see activity a zero-delay model
        misses on ripple structures (the paper's motivation)."""
        netlist = build_adder(8)
        clean(netlist)
        aware = map_netlist(netlist, glitch_aware=True)
        blind = map_netlist(netlist, glitch_aware=False)
        assert aware.total_sa > blind.total_sa

    def test_input_activity_override(self):
        netlist = build_adder(4)
        clean(netlist)
        quiet = map_netlist(
            netlist,
            input_activities={pi: 0.0 for pi in netlist.inputs},
        )
        assert quiet.total_sa == pytest.approx(0.0)

    def test_selected_cuts_cover_all_luts(self):
        netlist = build_adder(4)
        clean(netlist)
        result = map_netlist(netlist)
        for net, gate in result.netlist.gates.items():
            assert result.selected_cuts[net] == gate.inputs
