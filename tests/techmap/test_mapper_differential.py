"""Differential pinning: the fast mapper vs the seed mapper.

``effort="fast"`` must be a pure speedup — byte-identical covers, SA
accounting and downstream flow measurements versus the seed mapper
kept behind ``effort="reference"``. The full benchmark x K x cut-cap
cross-product is slow-marked; a small smoke subset stays in tier-1 so
every push checks the contract.
"""

import pytest

from repro import benchmark_spec, BENCHMARK_NAMES
from repro.cdfg import load_benchmark
from repro.flow.run import FlowConfig, build_pipeline, run_flow
from repro.scheduling import list_schedule
from repro.techmap import map_netlist
from repro.techmap.compile import ConeMemo

_DESIGNS = {}


def elaborated(benchmark: str, width: int):
    """Memoized (netlist, control activities) for one benchmark."""
    key = (benchmark, width)
    if key not in _DESIGNS:
        spec = benchmark_spec(benchmark)
        schedule = list_schedule(load_benchmark(benchmark), spec.constraints)
        pipe = build_pipeline(
            schedule, spec.constraints, "lopass", FlowConfig(width=width)
        )
        design = pipe.artifact("elaborate")
        activities = {
            net: 0.1
            for nets in design.control_nets.values()
            for net in nets
        }
        _DESIGNS[key] = (design.netlist, activities)
    return _DESIGNS[key]


def assert_identical(reference, fast):
    """Every observable of the two MapResults must match exactly."""
    assert reference.selected_cuts == fast.selected_cuts
    assert reference.lut_sa == fast.lut_sa
    assert reference.total_sa == fast.total_sa
    assert reference.functional_sa == fast.functional_sa
    assert reference.glitch_sa == fast.glitch_sa
    assert reference.area == fast.area
    assert reference.depth == fast.depth
    assert set(reference.waveforms) == set(fast.waveforms)
    for net, wave in reference.waveforms.items():
        other = fast.waveforms[net]
        assert wave.probability == other.probability, net
        assert wave.steps == other.steps, net
        assert wave.depth == other.depth, net
    assert sorted(reference.netlist.gates) == sorted(fast.netlist.gates)
    for net, gate in reference.netlist.gates.items():
        other = fast.netlist.gates[net]
        assert gate.inputs == other.inputs, net
        assert gate.table == other.table, net


def run_pair(benchmark: str, width: int, k: int, cut_cap: int):
    netlist, activities = elaborated(benchmark, width)
    reference = map_netlist(
        netlist, k=k, cut_cap=cut_cap, input_activities=activities,
        effort="reference",
    )
    fast = map_netlist(
        netlist, k=k, cut_cap=cut_cap, input_activities=activities,
        effort="fast",
    )
    assert_identical(reference, fast)


SMOKE = [("wang", 4), ("pr", 4)]


class TestSmoke:
    """Tier-1 subset: every push checks the bit-identity contract."""

    @pytest.mark.parametrize("bench_name,width", SMOKE)
    def test_default_knobs(self, bench_name, width):
        run_pair(bench_name, width, k=4, cut_cap=8)

    def test_k6_and_small_cap(self):
        run_pair("wang", 4, k=6, cut_cap=8)
        run_pair("wang", 4, k=4, cut_cap=4)

    def test_warm_memo_is_equivalent(self):
        """A pre-warmed cone memo must not change a single bit."""
        netlist, activities = elaborated("pr", 4)
        memo = ConeMemo()
        first = map_netlist(
            netlist, input_activities=activities, effort="fast",
            cone_memo=memo,
        )
        assert memo.stats()["entries"] > 0
        warm = map_netlist(
            netlist, input_activities=activities, effort="fast",
            cone_memo=memo,
        )
        assert_identical(first, warm)
        reference = map_netlist(
            netlist, input_activities=activities, effort="reference",
        )
        assert_identical(reference, warm)

    def test_wide_cone_refusal_matches_reference(self):
        """Beyond MAX_EXACT_INPUTS the reference path refuses the
        exact pair computation; the batched path must refuse too
        instead of silently computing what the seed mapper cannot."""
        from repro.errors import EstimationError
        from repro.netlist.gates import GateType, Netlist

        netlist = Netlist()
        inputs = [netlist.add_input(f"i{n}") for n in range(7)]
        y = netlist.add_simple(GateType.AND, inputs, "y")
        netlist.set_output(y)
        with pytest.raises(EstimationError):
            map_netlist(netlist, k=7, effort="reference")
        with pytest.raises(EstimationError):
            map_netlist(netlist, k=7, effort="fast")

    def test_glitch_blind_identical(self):
        netlist, activities = elaborated("pr", 4)
        reference = map_netlist(
            netlist, input_activities=activities, glitch_aware=False,
            effort="reference",
        )
        fast = map_netlist(
            netlist, input_activities=activities, glitch_aware=False,
            effort="fast",
        )
        assert_identical(reference, fast)

    def test_flow_results_byte_identical(self):
        """Downstream FlowResults agree metric for metric."""
        spec = benchmark_spec("wang")
        schedule = list_schedule(load_benchmark("wang"), spec.constraints)
        results = {}
        for effort in ("fast", "reference"):
            config = FlowConfig(width=4, n_vectors=64, map_effort=effort)
            results[effort] = run_flow(
                schedule, spec.constraints, "lopass", config
            )
        fast, reference = results["fast"], results["reference"]
        assert fast.metrics() == reference.metrics()
        assert fast.simulation.outputs == reference.simulation.outputs
        assert fast.mapping.lut_sa == reference.mapping.lut_sa


@pytest.mark.slow
class TestFullCrossProduct:
    """All 7 benchmarks x K in {4, 6} x cut caps in {4, 8}."""

    @pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
    @pytest.mark.parametrize("k", (4, 6))
    @pytest.mark.parametrize("cut_cap", (4, 8))
    def test_cover_identical(self, bench_name, k, cut_cap):
        run_pair(bench_name, 8, k=k, cut_cap=cut_cap)


@pytest.mark.slow
class TestFullFlowDifferential:
    """End-to-end flow agreement on every benchmark."""

    @pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
    def test_flow_metrics_identical(self, bench_name):
        spec = benchmark_spec(bench_name)
        schedule = list_schedule(
            load_benchmark(bench_name), spec.constraints
        )
        results = {}
        for effort in ("fast", "reference"):
            config = FlowConfig(width=4, n_vectors=64, map_effort=effort)
            results[effort] = run_flow(
                schedule, spec.constraints, "lopass", config
            )
        assert results["fast"].metrics() == results["reference"].metrics()
        assert (
            results["fast"].simulation.outputs
            == results["reference"].simulation.outputs
        )
