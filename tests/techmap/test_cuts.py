"""Tests for K-feasible cut enumeration and cone collapsing."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MappingError
from repro.netlist.gates import GateType, Netlist
from repro.netlist.library import build_adder
from repro.techmap.cuts import cone_function, cone_nodes, enumerate_cuts

from tests.conftest import evaluate_netlist


def build_tree() -> Netlist:
    """y = (a AND b) OR (c AND d)."""
    netlist = Netlist()
    a, b, c, d = (netlist.add_input(n) for n in "abcd")
    n1 = netlist.add_simple(GateType.AND, (a, b), "n1")
    n2 = netlist.add_simple(GateType.AND, (c, d), "n2")
    y = netlist.add_simple(GateType.OR, (n1, n2), "y")
    netlist.set_output(y)
    return netlist


class TestEnumeration:
    def test_source_has_trivial_cut_only(self):
        netlist = build_tree()
        cuts = enumerate_cuts(netlist, k=4)
        assert cuts["a"] == [frozenset(("a",))]

    def test_root_includes_leaf_cut(self):
        netlist = build_tree()
        cuts = enumerate_cuts(netlist, k=4)
        assert frozenset("abcd") in cuts["y"]
        assert frozenset(("y",)) in cuts["y"]

    def test_k_limits_cut_width(self):
        netlist = build_tree()
        cuts = enumerate_cuts(netlist, k=3)
        assert frozenset("abcd") not in cuts["y"]
        assert all(len(cut) <= 3 for cut in cuts["y"])

    def test_dominated_cuts_pruned(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        n1 = netlist.add_simple(GateType.NOT, (a,), "n1")
        n2 = netlist.add_simple(GateType.NOT, (n1,), "n2")
        netlist.set_output(n2)
        cuts = enumerate_cuts(netlist, k=4)
        # {a} dominates any superset; only {n2}, {n1}, {a} survive.
        assert set(cuts["n2"]) == {
            frozenset(("n2",)),
            frozenset(("n1",)),
            frozenset(("a",)),
        }

    def test_cap_respected(self):
        netlist = build_adder(4)
        cuts = enumerate_cuts(netlist, k=4, cap=3)
        assert all(len(cut_list) <= 3 for cut_list in cuts.values())

    def test_invalid_parameters_rejected(self):
        netlist = build_tree()
        with pytest.raises(MappingError):
            enumerate_cuts(netlist, k=1)
        with pytest.raises(MappingError):
            enumerate_cuts(netlist, k=4, cap=0)

    def test_every_cut_is_a_real_cut(self):
        netlist = build_adder(3)
        cuts = enumerate_cuts(netlist, k=4)
        for net in netlist.gates:
            for cut in cuts[net]:
                if cut == frozenset((net,)):
                    continue
                # cone_nodes raises if the cut does not bound the cone.
                cone_nodes(netlist, net, cut)


class TestConeFunction:
    def test_collapse_two_level_tree(self):
        netlist = build_tree()
        table = cone_function(netlist, "y", ("a", "b", "c", "d"))
        assert table.evaluate([True, True, False, False]) is True
        assert table.evaluate([False, True, True, False]) is False
        assert table.evaluate([False, False, True, True]) is True

    def test_leaf_ordering_defines_inputs(self):
        netlist = build_tree()
        table = cone_function(netlist, "n1", ("b", "a"))
        assert table.evaluate([True, True]) is True
        assert table.evaluate([True, False]) is False

    def test_root_as_leaf_is_identity(self):
        netlist = build_tree()
        table = cone_function(netlist, "n1", ("n1",))
        assert table.evaluate([True]) is True
        assert table.evaluate([False]) is False

    def test_escaping_cone_rejected(self):
        netlist = build_tree()
        with pytest.raises(MappingError):
            cone_nodes(netlist, "y", frozenset(("n1", "c")))  # d escapes

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_collapse_matches_direct_evaluation(self, seed):
        netlist = build_adder(3)
        cuts = enumerate_cuts(netlist, k=4)
        rng = random.Random(seed)
        net = rng.choice(sorted(netlist.gates))
        candidates = [c for c in cuts[net] if c != frozenset((net,))]
        if not candidates:  # constant gates have only the trivial cut
            return
        cut = rng.choice(candidates)
        leaves = tuple(sorted(cut))
        table = cone_function(netlist, net, leaves)
        assignment = {pi: rng.random() < 0.5 for pi in netlist.inputs}
        values = evaluate_netlist(netlist, assignment)
        assert table.evaluate([values[l] for l in leaves]) == values[net]
