"""Property tests for K-feasible cut enumeration on random netlists.

Every property below holds for the reference
:func:`repro.techmap.cuts.enumerate_cuts` *and* pins the compiled
bitmask enumeration (:func:`repro.techmap.compile.enumerate_cuts_ids`)
to the reference's exact candidate order, which is what lets the fast
mapper reproduce the seed mapper's selections bit for bit.

The generator grows adversarial netlists on purpose: zero-input
constant gates, duplicate fanins, latch leaves (both as cut leaves and
as cover roots), dead logic, nets that are simultaneously primary
input and output, and gates up to 3 inputs with arbitrary truth
tables.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MappingError
from repro.netlist.gates import Netlist, TruthTable
from repro.techmap import (
    compile_map_netlist,
    enumerate_cuts,
    enumerate_cuts_ids,
    map_netlist,
)
from repro.techmap.cuts import cone_nodes


@st.composite
def random_netlists(draw) -> Netlist:
    netlist = Netlist("rand")
    n_inputs = draw(st.integers(1, 4))
    for index in range(n_inputs):
        netlist.add_input(f"pi{index}")
    nets = list(netlist.inputs)

    # Early latches: their outputs are sources that gates may read, so
    # cuts can have latch leaves. Data defaults to a primary input and
    # may be rewired to a gate net below.
    n_latches = draw(st.integers(0, 2))
    for index in range(n_latches):
        data = draw(st.sampled_from(nets))
        nets.append(netlist.add_latch(data, f"q{index}"))

    n_gates = draw(st.integers(0, 14))
    for index in range(n_gates):
        arity = draw(st.integers(0, 3))
        if arity == 0:
            nets.append(netlist.add_const(draw(st.booleans()), f"g{index}"))
            continue
        # sampled_from with replacement: duplicate fanins are legal.
        fanins = [draw(st.sampled_from(nets)) for _ in range(arity)]
        bits = draw(st.integers(0, (1 << (1 << arity)) - 1))
        nets.append(
            netlist.add_gate(TruthTable(arity, bits), fanins, f"g{index}")
        )

    # Late latches exercise latch-data cover roots over gate nets.
    if draw(st.booleans()) and n_gates:
        netlist.add_latch(draw(st.sampled_from(nets)), "qlate")

    n_outputs = draw(st.integers(1, 3))
    for _ in range(n_outputs):
        netlist.set_output(draw(st.sampled_from(nets)))
    netlist.validate()
    return netlist


CUT_SETTINGS = settings(max_examples=60, deadline=None)


class TestCutProperties:
    @CUT_SETTINGS
    @given(random_netlists(), st.integers(2, 4), st.integers(1, 8))
    def test_cuts_k_feasible_and_capped(self, netlist, k, cap):
        cuts = enumerate_cuts(netlist, k, cap)
        for net, cut_list in cuts.items():
            assert len(cut_list) <= cap
            for cut in cut_list:
                assert 1 <= len(cut) <= max(k, 1)

    @CUT_SETTINGS
    @given(random_netlists(), st.integers(2, 4), st.integers(1, 8))
    def test_trivial_cut_always_first(self, netlist, k, cap):
        cuts = enumerate_cuts(netlist, k, cap)
        for net, cut_list in cuts.items():
            assert cut_list[0] == frozenset((net,))

    @CUT_SETTINGS
    @given(random_netlists(), st.integers(2, 4), st.integers(1, 8))
    def test_no_dominated_cut_survives(self, netlist, k, cap):
        cuts = enumerate_cuts(netlist, k, cap)
        for cut_list in cuts.values():
            for i, a in enumerate(cut_list):
                for j, b in enumerate(cut_list):
                    if i != j:
                        assert not a < b, (a, b)
                        assert a != b or i == j

    @CUT_SETTINGS
    @given(random_netlists(), st.integers(2, 4), st.integers(1, 8))
    def test_leaves_are_reachable_nets(self, netlist, k, cap):
        cuts = enumerate_cuts(netlist, k, cap)
        for net, cut_list in cuts.items():
            fanin = netlist.transitive_fanin([net])
            for cut in cut_list:
                assert cut <= fanin

    @CUT_SETTINGS
    @given(random_netlists(), st.integers(2, 4), st.integers(1, 8))
    def test_every_cut_bounds_its_cone(self, netlist, k, cap):
        cuts = enumerate_cuts(netlist, k, cap)
        for net in netlist.gates:
            for cut in cuts[net]:
                if cut == frozenset((net,)):
                    continue
                # cone_nodes raises MappingError when a cut leaks.
                cone_nodes(netlist, net, cut)

    @CUT_SETTINGS
    @given(random_netlists(), st.integers(2, 4), st.integers(1, 8))
    def test_constant_gates_have_trivial_cut_only(self, netlist, k, cap):
        cuts = enumerate_cuts(netlist, k, cap)
        for net, gate in netlist.gates.items():
            if not gate.inputs:
                assert cuts[net] == [frozenset((net,))]

    @CUT_SETTINGS
    @given(random_netlists(), st.integers(2, 4), st.integers(1, 8))
    def test_compiled_enumeration_matches_reference(self, netlist, k, cap):
        """The bitmask engine yields the reference candidate lists,
        element for element and in order."""
        reference = enumerate_cuts(netlist, k, cap)
        cm = compile_map_netlist(netlist)
        compiled = enumerate_cuts_ids(cm, k, cap)
        for net, gate in netlist.gates.items():
            expected = [
                cut for cut in reference[net] if cut != frozenset((net,))
            ]
            got = compiled[cm.ids[net]]
            assert len(got) == len(expected)
            for (mask, leaf_ids), cut in zip(got, expected):
                names = {cm.names[leaf] for leaf in leaf_ids}
                assert names == set(cut)
                # Leaf order is the reference's sorted(cut).
                assert tuple(cm.names[leaf] for leaf in leaf_ids) == \
                    tuple(sorted(cut))


class TestEdgeCases:
    """The audit items: cap=1, constants, latch leaves."""

    def test_cap_one_keeps_trivial_only_and_mapping_reports_it(self):
        from repro.netlist.gates import GateType
        netlist = Netlist()
        a = netlist.add_input("a")
        y = netlist.add_simple(GateType.NOT, (a,), "y")
        netlist.set_output(y)
        cuts = enumerate_cuts(netlist, k=4, cap=1)
        assert cuts["y"] == [frozenset(("y",))]
        # A cap-1 enumeration leaves no implementable cut; the mapper
        # must say so (and name the knob) instead of crashing deeper.
        for effort in ("reference", "fast"):
            with pytest.raises(MappingError, match="cut_cap"):
                map_netlist(netlist, cut_cap=1, effort=effort)

    def test_constant_only_netlist_maps(self):
        netlist = Netlist()
        one = netlist.add_const(True, "one")
        netlist.set_output(one)
        for effort in ("reference", "fast"):
            result = map_netlist(netlist, effort=effort)
            assert result.netlist.gates["one"].table.is_constant() is True
            assert result.total_sa == 0.0

    def test_latch_leaf_cut_and_latch_data_root(self):
        from repro.netlist.gates import GateType
        netlist = Netlist()
        a = netlist.add_input("a")
        q = netlist.add_latch("d", "q")
        y = netlist.add_simple(GateType.AND, (a, q), "y")
        d = netlist.add_simple(GateType.NOT, (y,), "d")
        netlist.set_output(y)
        netlist.validate()
        cuts = enumerate_cuts(netlist, k=4)
        assert frozenset(("a", "q")) in cuts["y"]
        assert cuts["q"] == [frozenset(("q",))]
        for effort in ("reference", "fast"):
            result = map_netlist(netlist, effort=effort)
            # The latch survives and its data cone is covered.
            assert result.netlist.num_latches() == 1
            assert "d" in result.netlist.gates

    def test_duplicate_fanins_map_identically(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        y = netlist.add_gate(TruthTable(2, 0b1000), (a, a), "y")  # a AND a
        netlist.set_output(y)
        ref = map_netlist(netlist, effort="reference")
        fast = map_netlist(netlist, effort="fast")
        assert ref.selected_cuts == fast.selected_cuts
        assert ref.total_sa == fast.total_sa

    @CUT_SETTINGS
    @given(random_netlists(), st.integers(2, 4))
    def test_mapping_agrees_across_paths(self, netlist, k):
        """Both mapper paths agree on every random netlist: identical
        covers when mappable, and the same refusal when a gate is
        wider than any K-feasible cut (the seed mapper does not
        decompose gates — a 3-input gate under k=2 is unmappable by
        design, surfaced by this suite and pinned here).
        """
        try:
            ref = map_netlist(netlist, k=k, effort="reference")
        except MappingError:
            with pytest.raises(MappingError):
                map_netlist(netlist, k=k, effort="fast")
            return
        fast = map_netlist(netlist, k=k, effort="fast")
        assert ref.selected_cuts == fast.selected_cuts
        assert ref.total_sa == fast.total_sa
        assert ref.lut_sa == fast.lut_sa

    @CUT_SETTINGS
    @given(random_netlists())
    def test_mapping_succeeds_when_k_covers_every_gate(self, netlist):
        """k >= the widest gate arity guarantees mappability (each
        gate's own fanin set is then a feasible cut)."""
        widest = max(
            (len(g.inputs) for g in netlist.gates.values()), default=0
        )
        k = max(2, widest)
        ref = map_netlist(netlist, k=k, effort="reference")
        fast = map_netlist(netlist, k=k, effort="fast")
        assert ref.selected_cuts == fast.selected_cuts
        assert ref.total_sa == fast.total_sa
