"""Bit-blasting: pinned golden netlists and word-level semantics."""

import pytest

from repro.ingest import bit_blast, elaborate_design, load_design_text, parse_module
from repro.netlist.blif import blif_text
from tests.conftest import evaluate_netlist


def _module(signals, ops, name="m"):
    return parse_module({
        "format": "repro-module-v1",
        "name": name,
        "signals": signals,
        "ops": ops,
    })


def _assign(design, words, state=None):
    """Build a bit assignment from word values (plus latch-output bits)."""
    assignment = {}
    for name, value in words.items():
        for i, net in enumerate(design.signal_bits[name]):
            assignment[net] = bool((value >> i) & 1)
    if state:
        assignment.update(state)
    return assignment


def _word(values, nets):
    return sum(int(values[net]) << i for i, net in enumerate(nets))


def _out(design, words, output, state=None):
    values = evaluate_netlist(design.netlist, _assign(design, words, state))
    return _word(values, design.signal_bits[output])


TINY = _module(
    [
        {"name": "a", "width": 2, "input": True},
        {"name": "b", "width": 2, "input": True},
        {"name": "s", "width": 2},
        {"name": "r", "width": 2, "reg": True, "init": 2},
        {"name": "y", "width": 2, "output": True},
    ],
    [
        {"op": "add", "inputs": ["a", "b"], "output": "s"},
        {"op": "dff", "inputs": ["s"], "output": "r"},
        {"op": "xor", "inputs": ["r", "a"], "output": "y"},
    ],
    name="tiny",
)

# Pinned output of bit_blast(TINY).  Any change to net naming, cell
# structure, or the clean pass shows up as a diff against this text —
# and silently changes every ingested design's content fingerprint.
TINY_GOLDEN = """\
.model tiny
.inputs a[0] a[1] b[0] b[1]
.outputs y[0] y[1]
.latch u0_add/n1 r[0] 0
.latch u0_add/n7 r[1] 1
.names a[0] b[0] u0_add/n1
10 1
01 1
.names a[0] b[0] u0_add/n3
11 1
.names a[1] b[1] u0_add/n6
10 1
01 1
.names u0_add/n6 u0_add/n3 u0_add/n7
10 1
01 1
.names r[0] a[0] y[0]
10 1
01 1
.names r[1] a[1] y[1]
10 1
01 1
.end
"""


class TestGolden:
    def test_tiny_module_pins_netlist_text(self):
        assert blif_text(bit_blast(TINY).netlist) == TINY_GOLDEN

    def test_bit_blast_is_deterministic(self):
        assert (blif_text(bit_blast(TINY).netlist)
                == blif_text(bit_blast(TINY).netlist))

    def test_metadata(self):
        design = bit_blast(TINY)
        assert design.name == "tiny"
        assert design.n_registers == 1
        assert design.control_nets == ()
        assert sorted(design.signal_bits) == ["a", "b", "y"]
        assert design.signal_bits["a"] == ("a[0]", "a[1]")

    def test_latch_inits_follow_reg_init(self):
        netlist = bit_blast(TINY).netlist
        # init 2 = 0b10: bit 0 clear, bit 1 set.
        assert netlist.latches["r[0]"].init is False
        assert netlist.latches["r[1]"].init is True


def _binop(op, width=4):
    return bit_blast(_module(
        [{"name": "a", "width": width, "input": True},
         {"name": "b", "width": width, "input": True},
         {"name": "y", "width": width, "output": True}],
        [{"op": op, "inputs": ["a", "b"], "output": "y"}],
    ))


class TestArithmetic:
    @pytest.mark.parametrize("op,func", [
        ("add", lambda a, b: (a + b) % 16),
        ("sub", lambda a, b: (a - b) % 16),
        ("mul", lambda a, b: (a * b) % 16),
    ])
    def test_exhaustive_width4(self, op, func):
        design = _binop(op)
        for a in range(16):
            for b in range(16):
                assert _out(design, {"a": a, "b": b}, "y") == func(a, b), \
                    f"{op}({a}, {b})"


class TestBitwise:
    @pytest.mark.parametrize("op,func", [
        ("and", lambda a, b: a & b),
        ("or", lambda a, b: a | b),
        ("xor", lambda a, b: a ^ b),
    ])
    def test_exhaustive_width4(self, op, func):
        design = _binop(op)
        for a in range(16):
            for b in range(16):
                assert _out(design, {"a": a, "b": b}, "y") == func(a, b)

    def test_not(self):
        design = bit_blast(_module(
            [{"name": "a", "width": 4, "input": True},
             {"name": "y", "width": 4, "output": True}],
            [{"op": "not", "inputs": ["a"], "output": "y"}],
        ))
        for a in range(16):
            assert _out(design, {"a": a}, "y") == a ^ 0xF


class TestMux:
    def _mux(self, n, width=2):
        from repro.netlist.library import select_width
        signals = [{"name": f"d{i}", "width": width, "input": True}
                   for i in range(n)]
        signals += [
            {"name": "sel", "width": select_width(n), "input": True},
            {"name": "y", "width": width, "output": True},
        ]
        return bit_blast(_module(signals, [
            {"op": "mux", "select": "sel",
             "inputs": [f"d{i}" for i in range(n)], "output": "y"},
        ]))

    def test_power_of_two(self):
        design = self._mux(4)
        data = {f"d{i}": i for i in range(4)}
        for sel in range(4):
            assert _out(design, dict(data, sel=sel), "y") == sel

    def test_non_power_of_two_clamps_to_last(self):
        # 3-input tree: sel values beyond the input count resolve to the
        # last input, matching the generator's unbalanced mux tree.
        design = self._mux(3)
        data = {"d0": 1, "d1": 2, "d2": 3}
        for sel, expected in [(0, 1), (1, 2), (2, 3), (3, 3)]:
            assert _out(design, dict(data, sel=sel), "y") == expected

    def test_two_input(self):
        design = self._mux(2)
        for sel in range(2):
            assert _out(design, {"d0": 1, "d1": 2, "sel": sel}, "y") \
                == (2 if sel else 1)


class TestWiring:
    def test_slice_concat_const(self):
        design = bit_blast(_module(
            [{"name": "a", "width": 4, "input": True},
             {"name": "hi", "width": 2},
             {"name": "lo", "width": 2},
             {"name": "k", "width": 3},
             {"name": "swapped", "width": 4, "output": True},
             {"name": "y", "width": 3, "output": True}],
            [{"op": "slice", "inputs": ["a"], "lsb": 2, "output": "hi"},
             {"op": "slice", "inputs": ["a"], "lsb": 0, "output": "lo"},
             {"op": "concat", "inputs": ["hi", "lo"], "output": "swapped"},
             {"op": "const", "value": 5, "output": "k"},
             {"op": "not", "inputs": ["k"], "output": "y"}],
        ))
        for a in range(16):
            swapped = ((a & 0x3) << 2) | (a >> 2)
            assert _out(design, {"a": a}, "swapped") == swapped
        assert _out(design, {"a": 0}, "y") == 5 ^ 0x7

    def test_dff_next_state(self):
        # 3-bit counter: r' = r + 1, starting from init 5.
        design = bit_blast(_module(
            [{"name": "one", "width": 3},
             {"name": "nxt", "width": 3},
             {"name": "r", "width": 3, "reg": True, "init": 5},
             {"name": "y", "width": 3, "output": True}],
            [{"op": "const", "value": 1, "output": "one"},
             {"op": "add", "inputs": ["r", "one"], "output": "nxt"},
             {"op": "dff", "inputs": ["nxt"], "output": "r"},
             {"op": "slice", "inputs": ["r"], "lsb": 0, "output": "y"}],
        ))
        netlist = design.netlist
        state_nets = [f"r[{b}]" for b in range(3)]
        assert all(net in netlist.latches for net in state_nets)
        state = sum(netlist.latches[net].init << b
                    for b, net in enumerate(state_nets))
        assert state == 5
        for _ in range(10):
            bits = {net: bool((state >> b) & 1)
                    for b, net in enumerate(state_nets)}
            values = evaluate_netlist(netlist, _assign(design, {}, bits))
            assert _word(values, design.signal_bits["y"]) == state
            nxt = sum(int(values[netlist.latches[net].data]) << b
                      for b, net in enumerate(state_nets))
            assert nxt == (state + 1) % 8
            state = nxt


class TestElaborateDesign:
    def test_module_design_matches_bit_blast(self):
        import json
        text = json.dumps({
            "format": "repro-module-v1",
            "name": "tiny",
            "signals": [
                {"name": "a", "width": 2, "input": True},
                {"name": "b", "width": 2, "input": True},
                {"name": "s", "width": 2},
                {"name": "r", "width": 2, "reg": True, "init": 2},
                {"name": "y", "width": 2, "output": True},
            ],
            "ops": [
                {"op": "add", "inputs": ["a", "b"], "output": "s"},
                {"op": "dff", "inputs": ["s"], "output": "r"},
                {"op": "xor", "inputs": ["r", "a"], "output": "y"},
            ],
        })
        design = load_design_text(text)
        assert blif_text(elaborate_design(design).netlist) == TINY_GOLDEN

    def test_blif_design_round_trips(self):
        design = load_design_text(TINY_GOLDEN)
        elaborated = elaborate_design(design)
        assert blif_text(elaborated.netlist) == TINY_GOLDEN
        assert elaborated.n_registers == 2
        assert elaborated.control_nets == ()
