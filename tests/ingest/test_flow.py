"""Flow entry for external designs: caching, sweeps, pool, CLI."""

import json

import pytest

from repro.errors import ConfigError
from repro.flow.batch import SweepResult, run_sweep
from repro.flow.cache import ArtifactCache
from repro.flow.grid import SweepSpec, expand_grid
from repro.flow.run import FlowConfig
from repro.ingest import (
    INGEST_STAGES,
    design_fingerprint,
    load_design_text,
    run_design_estimate,
)

TINY_TEXT = json.dumps({
    "format": "repro-module-v1",
    "name": "tiny",
    "signals": [
        {"name": "a", "width": 2, "input": True},
        {"name": "b", "width": 2, "input": True},
        {"name": "clear", "width": 1, "input": True, "control": True},
        {"name": "s", "width": 2},
        {"name": "zero", "width": 2},
        {"name": "nxt", "width": 2},
        {"name": "r", "width": 2, "reg": True, "init": 2},
        {"name": "y", "width": 2, "output": True},
    ],
    "ops": [
        {"op": "add", "inputs": ["a", "b"], "output": "s"},
        {"op": "const", "value": 0, "output": "zero"},
        {"op": "mux", "select": "clear", "inputs": ["s", "zero"],
         "output": "nxt"},
        {"op": "dff", "inputs": ["nxt"], "output": "r"},
        {"op": "xor", "inputs": ["r", "a"], "output": "y"},
    ],
})


class TestRunDesignEstimate:
    def test_cold_warm_identical(self):
        design = load_design_text(TINY_TEXT)
        cache = ArtifactCache(32)
        cold = run_design_estimate(design, cache=cache)
        warm = run_design_estimate(design, cache=cache)
        assert cold.cache_hits == []
        assert warm.cache_hits == list(INGEST_STAGES)
        assert cold.metrics() == warm.metrics()

    def test_cache_off_identical(self):
        design = load_design_text(TINY_TEXT)
        uncached = run_design_estimate(design)
        cached = run_design_estimate(design, cache=ArtifactCache(32))
        assert uncached.metrics() == cached.metrics()

    def test_metrics_schema_matches_estimate_flow(self):
        from repro.flow.run import run_estimate
        from repro.cdfg import load_benchmark
        from repro.scheduling import list_schedule

        design_keys = set(
            run_design_estimate(load_design_text(TINY_TEXT)).metrics()
        )
        schedule = list_schedule(load_benchmark("pr"),
                                 {"add": 2, "mult": 2})
        flow_keys = set(
            run_estimate(schedule, {"add": 2, "mult": 2}).metrics()
        )
        assert design_keys == flow_keys

    def test_fingerprint_is_content_addressed(self):
        base = load_design_text(TINY_TEXT)
        again = load_design_text(TINY_TEXT, name="other")
        assert design_fingerprint(base) == design_fingerprint(again)
        changed = json.loads(TINY_TEXT)
        changed["ops"][0]["op"] = "sub"
        other = load_design_text(json.dumps(changed))
        assert design_fingerprint(base) != design_fingerprint(other)

    def test_config_axes_reach_result(self):
        design = load_design_text(TINY_TEXT)
        k4 = run_design_estimate(design, FlowConfig(k=4, flow="estimate"))
        k2 = run_design_estimate(design, FlowConfig(k=2, flow="estimate"))
        assert k2.metrics()["area_luts"] > k4.metrics()["area_luts"]


def _design_spec(**overrides):
    kwargs = dict(
        benchmarks=[],
        designs={"tiny": TINY_TEXT},
        flow="estimate",
        baseline="none",
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestSweepIntegration:
    def test_design_cells(self):
        sweep = run_sweep(_design_spec(), jobs=1)
        assert len(sweep.cells) == 1
        cell = sweep.cells[0]
        assert cell.benchmark == "design:tiny"
        assert cell.config == "ingest" and cell.binder == "ingest"
        assert cell.width == 0
        direct = run_design_estimate(
            load_design_text(TINY_TEXT, name="tiny"),
            FlowConfig(k=4, map_effort="fast", flow="estimate"),
        )
        assert cell.metrics == direct.metrics()

    def test_pool_matches_serial(self):
        spec = _design_spec(map_efforts=("fast", "exhaustive"))
        serial = run_sweep(spec, jobs=1)
        pooled = run_sweep(spec, jobs=2)
        assert len(serial.cells) == 2
        assert ([cell.metrics for cell in serial.cells]
                == [cell.metrics for cell in pooled.cells])

    def test_mixed_benchmarks_and_designs(self):
        spec = _design_spec(benchmarks=["pr"], widths=(4,))
        sweep = run_sweep(spec, jobs=1)
        names = [cell.benchmark for cell in sweep.cells]
        # Benchmark cells first, then design cells.
        assert names == ["pr", "pr", "design:tiny"]

    def test_warm_executor_reuses_design_artifacts(self):
        from repro.flow.executor import FlowExecutor

        spec = _design_spec()
        with FlowExecutor(jobs=1) as executor:
            cold = run_sweep(spec, executor=executor)
            warm = run_sweep(spec, executor=executor)
        assert not cold.cells[0].schedule_cache_hit
        assert warm.cells[0].schedule_cache_hit
        assert cold.cells[0].metrics == warm.cells[0].metrics
        assert warm.cells[0].cache_hits == list(INGEST_STAGES)

    def test_spec_round_trips_with_designs(self):
        spec = _design_spec()
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone.designs == {"tiny": TINY_TEXT}
        assert ([job.design for job in expand_grid(clone)]
                == [job.design for job in expand_grid(spec)])

    def test_result_round_trips(self):
        sweep = run_sweep(_design_spec(), jobs=1)
        clone = SweepResult.from_json(sweep.to_json())
        assert ([cell.metrics for cell in clone.cells]
                == [cell.metrics for cell in sweep.cells])


class TestSpecValidation:
    def test_designs_require_estimate_flow(self):
        with pytest.raises(ConfigError, match="estimate"):
            _design_spec(flow="full").validate()

    def test_malformed_design_named(self):
        with pytest.raises(ConfigError, match="design 'bad'"):
            _design_spec(designs={"bad": "{not json"}).validate()

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError, match="no benchmarks or designs"):
            SweepSpec(benchmarks=[], flow="estimate").validate()


class TestCli:
    def test_estimate_design_runs_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        module_path = tmp_path / "tiny.json"
        module_path.write_text(TINY_TEXT)
        outputs = []
        for run in range(2):
            out = tmp_path / f"sweep{run}.json"
            assert main(["estimate", "--design", str(module_path),
                         "--out", str(out),
                         "--sa-table", str(tmp_path / "sa.txt")]) == 0
            result = SweepResult.load(str(out))
            outputs.append([cell.metrics for cell in result.cells])
            assert result.cells[0].benchmark == "design:tiny"
        assert outputs[0] == outputs[1]
        assert "design:tiny" in capsys.readouterr().out

    def test_sweep_design_requires_estimate_flow(self, tmp_path):
        from repro.cli import main

        module_path = tmp_path / "tiny.json"
        module_path.write_text(TINY_TEXT)
        with pytest.raises(SystemExit, match="estimate"):
            main(["sweep", "--design", str(module_path), "--flow", "full"])

    def test_missing_design_file(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="cannot read"):
            main(["estimate", "--design", "/nonexistent/x.json"])
