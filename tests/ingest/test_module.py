"""Module-format parsing, strict validation, and canonicalization."""

import json

import pytest

from repro.errors import IngestError
from repro.ingest import (
    ExternalDesign,
    canonical_text,
    load_design_text,
    parse_module,
)


def _module(signals, ops, name="m"):
    return {
        "format": "repro-module-v1",
        "name": name,
        "signals": signals,
        "ops": ops,
    }


VALID = _module(
    [
        {"name": "a", "width": 4, "input": True},
        {"name": "b", "width": 4, "input": True},
        {"name": "s", "width": 4},
        {"name": "r", "width": 4, "reg": True, "init": 3},
        {"name": "y", "width": 4, "output": True},
    ],
    [
        {"op": "add", "inputs": ["a", "b"], "output": "s"},
        {"op": "dff", "inputs": ["s"], "output": "r"},
        {"op": "xor", "inputs": ["r", "b"], "output": "y"},
    ],
)


class TestParse:
    def test_valid_module(self):
        module = parse_module(json.dumps(VALID))
        assert module.name == "m"
        assert module.signals["r"].is_reg and module.signals["r"].init == 3
        assert [op.op for op in module.ops] == ["add", "dff", "xor"]

    def test_accepts_mapping_directly(self):
        assert parse_module(VALID).name == "m"

    def test_bad_json(self):
        with pytest.raises(IngestError, match="JSON"):
            parse_module("{not json")

    def test_unknown_format_version(self):
        data = dict(VALID)
        data["format"] = "repro-module-v2"
        with pytest.raises(IngestError, match="repro-module-v1"):
            parse_module(data)

    def test_missing_format(self):
        data = {k: v for k, v in VALID.items() if k != "format"}
        with pytest.raises(IngestError, match="format"):
            parse_module(data)

    def test_unknown_op(self):
        data = _module(
            [{"name": "a", "width": 1, "input": True},
             {"name": "y", "width": 1, "output": True}],
            [{"op": "nand", "inputs": ["a", "a"], "output": "y"}],
        )
        with pytest.raises(IngestError, match="nand"):
            parse_module(data)

    def test_bracketed_signal_name_rejected(self):
        # Bit nets are named "<signal>[<bit>]"; a bracketed signal name
        # could collide with another signal's bit nets.
        data = _module(
            [{"name": "a[0]", "width": 1, "input": True},
             {"name": "y", "width": 1, "output": True}],
            [{"op": "not", "inputs": ["a[0]"], "output": "y"}],
        )
        with pytest.raises(IngestError, match="name"):
            parse_module(data)

    def test_duplicate_signal(self):
        data = _module(
            [{"name": "a", "width": 1, "input": True},
             {"name": "a", "width": 2, "input": True},
             {"name": "y", "width": 1, "output": True}],
            [{"op": "not", "inputs": ["a"], "output": "y"}],
        )
        with pytest.raises(IngestError, match="duplicate signal 'a'"):
            parse_module(data)

    def test_init_must_fit_width(self):
        data = json.loads(json.dumps(VALID))
        data["signals"][3]["init"] = 16
        with pytest.raises(IngestError, match="init 16"):
            parse_module(data)

    def test_control_on_non_input(self):
        data = json.loads(json.dumps(VALID))
        data["signals"][2]["control"] = True
        with pytest.raises(IngestError, match="control"):
            parse_module(data)


class TestValidator:
    """Every structural failure is reported by name."""

    def test_undriven_output(self):
        data = json.loads(json.dumps(VALID))
        data["ops"] = data["ops"][:2]
        with pytest.raises(IngestError,
                           match="output signal 'y' is never driven"):
            parse_module(data)

    def test_undriven_internal_signal(self):
        data = json.loads(json.dumps(VALID))
        data["ops"][0] = {"op": "not", "inputs": ["a"], "output": "y"}
        del data["ops"][2]
        with pytest.raises(IngestError, match="'s' is never driven"):
            parse_module(data)

    def test_multiple_drivers(self):
        data = json.loads(json.dumps(VALID))
        data["ops"].append(
            {"op": "and", "inputs": ["a", "b"], "output": "s"}
        )
        with pytest.raises(IngestError,
                           match="'s' has multiple drivers"):
            parse_module(data)

    def test_input_driven(self):
        data = json.loads(json.dumps(VALID))
        data["ops"].append(
            {"op": "and", "inputs": ["a", "b"], "output": "a"}
        )
        with pytest.raises(IngestError,
                           match="input signal 'a' is driven"):
            parse_module(data)

    def test_width_mismatch(self):
        data = json.loads(json.dumps(VALID))
        data["signals"][1]["width"] = 2
        with pytest.raises(IngestError, match="'b' is 2 bits wide"):
            parse_module(data)

    def test_unknown_signal_reference(self):
        data = json.loads(json.dumps(VALID))
        data["ops"][0]["inputs"] = ["a", "ghost"]
        with pytest.raises(IngestError, match="unknown signal 'ghost'"):
            parse_module(data)

    def test_combinational_cycle_named(self):
        data = _module(
            [{"name": "a", "width": 1, "input": True},
             {"name": "p", "width": 1},
             {"name": "q", "width": 1},
             {"name": "y", "width": 1, "output": True}],
            [{"op": "and", "inputs": ["a", "q"], "output": "p"},
             {"op": "not", "inputs": ["p"], "output": "q"},
             {"op": "not", "inputs": ["p"], "output": "y"}],
        )
        with pytest.raises(IngestError, match="combinational cycle:.*p"):
            parse_module(data)

    def test_dff_breaks_cycle(self):
        data = _module(
            [{"name": "a", "width": 1, "input": True},
             {"name": "p", "width": 1},
             {"name": "q", "width": 1, "reg": True},
             {"name": "y", "width": 1, "output": True}],
            [{"op": "and", "inputs": ["a", "q"], "output": "p"},
             {"op": "dff", "inputs": ["p"], "output": "q"},
             {"op": "not", "inputs": ["p"], "output": "y"}],
        )
        parse_module(data)  # no cycle through the register

    def test_dff_output_must_be_reg(self):
        data = json.loads(json.dumps(VALID))
        data["signals"][3]["reg"] = False
        data["signals"][3]["init"] = 0
        with pytest.raises(IngestError, match="must be declared reg"):
            parse_module(data)

    def test_reg_must_be_dff_driven(self):
        data = json.loads(json.dumps(VALID))
        data["ops"][1] = {"op": "not", "inputs": ["s"], "output": "r"}
        with pytest.raises(IngestError, match="must be driven by a dff"):
            parse_module(data)

    def test_mux_select_width(self):
        data = _module(
            [{"name": "a", "width": 2, "input": True},
             {"name": "b", "width": 2, "input": True},
             {"name": "c", "width": 2, "input": True},
             {"name": "sel", "width": 1, "input": True},
             {"name": "y", "width": 2, "output": True}],
            [{"op": "mux", "select": "sel", "inputs": ["a", "b", "c"],
              "output": "y"}],
        )
        with pytest.raises(IngestError, match="need 2"):
            parse_module(data)

    def test_slice_out_of_range(self):
        data = _module(
            [{"name": "a", "width": 4, "input": True},
             {"name": "y", "width": 2, "output": True}],
            [{"op": "slice", "inputs": ["a"], "lsb": 3, "output": "y"}],
        )
        with pytest.raises(IngestError, match="exceed"):
            parse_module(data)

    def test_concat_width_sum(self):
        data = _module(
            [{"name": "a", "width": 2, "input": True},
             {"name": "b", "width": 2, "input": True},
             {"name": "y", "width": 3, "output": True}],
            [{"op": "concat", "inputs": ["a", "b"], "output": "y"}],
        )
        with pytest.raises(IngestError, match="concat of 4 bits"):
            parse_module(data)

    def test_const_value_fits(self):
        data = _module(
            [{"name": "y", "width": 2, "output": True}],
            [{"op": "const", "value": 4, "output": "y"}],
        )
        with pytest.raises(IngestError, match="value 4"):
            parse_module(data)

    def test_no_outputs(self):
        data = _module(
            [{"name": "a", "width": 1, "input": True},
             {"name": "y", "width": 1}],
            [{"op": "not", "inputs": ["a"], "output": "y"}],
        )
        with pytest.raises(IngestError, match="declares no outputs"):
            parse_module(data)


class TestCanonical:
    def test_key_order_and_defaults_are_normalized(self):
        reordered = {
            "ops": VALID["ops"],
            "name": "m",
            "signals": [
                dict(reversed(list(signal.items())))
                for signal in VALID["signals"]
            ],
            "format": "repro-module-v1",
        }
        assert (canonical_text(parse_module(VALID))
                == canonical_text(parse_module(reordered)))

    def test_op_order_is_significant(self):
        data = json.loads(json.dumps(VALID))
        data["ops"] = [data["ops"][2], data["ops"][0], data["ops"][1]]
        assert (canonical_text(parse_module(VALID))
                != canonical_text(parse_module(data)))


class TestLoaders:
    def test_module_design(self):
        design = load_design_text(json.dumps(VALID), name="up")
        assert isinstance(design, ExternalDesign)
        assert design.kind == "module" and design.name == "up"

    def test_module_name_default(self):
        assert load_design_text(json.dumps(VALID)).name == "m"

    def test_blif_design(self):
        text = ".model t\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n"
        design = load_design_text(text)
        assert design.kind == "blif" and design.name == "t"
        # Canonical form is the writer's normalization of the parse.
        assert design.canonical.startswith(".model t\n")

    def test_blif_canonical_is_whitespace_insensitive(self):
        base = ".model t\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n"
        commented = ("# header\n.model t\n.inputs a\n\n.outputs y\n"
                     ".names a y\n0 1\n.end\n")
        assert (load_design_text(base).canonical
                == load_design_text(commented).canonical)

    def test_bad_blif_reported(self):
        with pytest.raises(IngestError, match="bad BLIF design"):
            load_design_text(".model t\n.inputs a\n.outputs y\n.end\n")

    def test_empty_design(self):
        with pytest.raises(IngestError, match="empty design"):
            load_design_text("   ")
