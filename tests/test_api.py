"""Public API surface tests."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_path():
    """The README quickstart must keep working verbatim."""
    from repro import (
        FlowConfig,
        benchmark_spec,
        compare_binders,
        list_schedule,
        load_benchmark,
    )
    from repro.binding.sa_table import SATable, SATableConfig

    spec = benchmark_spec("pr")
    schedule = list_schedule(load_benchmark("pr"), spec.constraints)
    results = compare_binders(
        schedule,
        spec.constraints,
        FlowConfig(width=4, n_vectors=16, sa_table=SATable(SATableConfig(3))),
    )
    assert results["hlpower"].power.dynamic_power_mw > 0
    assert results["lopass"].power.dynamic_power_mw > 0


def test_error_hierarchy():
    from repro import errors

    subclasses = [
        errors.CDFGError,
        errors.ScheduleError,
        errors.NetlistError,
        errors.BindingError,
        errors.ResourceError,
        errors.EstimationError,
        errors.MappingError,
        errors.RTLError,
        errors.SimulationError,
        errors.ConfigError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)
    assert issubclass(errors.ResourceError, errors.BindingError)
