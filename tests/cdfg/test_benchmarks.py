"""Tests for the seven paper benchmarks and the Figure 1 example."""

import pytest

from repro.errors import CDFGError
from repro.cdfg import (
    BENCHMARK_NAMES,
    Schedule,
    benchmark_spec,
    figure1_example,
    load_benchmark,
)
from repro.cdfg.benchmarks import BENCHMARKS
from repro.scheduling import list_schedule


class TestTable1Profiles:
    def test_all_seven_present(self):
        assert BENCHMARK_NAMES == (
            "chem", "dir", "honda", "mcm", "pr", "steam", "wang",
        )

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_profile_counts_match_table1(self, name):
        spec = benchmark_spec(name)
        cdfg = load_benchmark(name)
        assert len(cdfg.primary_inputs) == spec.profile.n_inputs
        assert len(cdfg.primary_outputs) == spec.profile.n_outputs
        adds = sum(
            1
            for op in cdfg.operations.values()
            if op.resource_class == "add"
        )
        mults = cdfg.num_operations("mult")
        assert adds == spec.profile.n_adds
        assert mults == spec.profile.n_mults

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_edge_counts_close_to_table1(self, name):
        """With strictly binary operations, edges = 2*ops + POs; the
        paper's counting convention differs (see EXPERIMENTS.md), so we
        only require the same order of magnitude (within 35%)."""
        spec = benchmark_spec(name)
        cdfg = load_benchmark(name)
        assert abs(cdfg.num_edges() - spec.paper_edges) <= 0.35 * spec.paper_edges

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(CDFGError):
            benchmark_spec("nonexistent")
        with pytest.raises(CDFGError):
            load_benchmark("nonexistent")

    def test_table2_data_attached(self):
        spec = benchmark_spec("chem")
        assert spec.constraints == {"add": 9, "mult": 7}
        assert spec.paper_cycles == 39
        assert spec.paper_registers == 70
        assert spec.paper_runtime_s == 812.0
        assert spec.kind == "dsp"


class TestScheduledShape:
    @pytest.mark.parametrize("name", ["pr", "wang", "honda"])
    def test_schedule_length_matches_paper(self, name):
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        assert schedule.length == spec.paper_cycles

    @pytest.mark.parametrize("name", ["pr", "wang", "honda", "mcm"])
    def test_densest_step_equals_constraint(self, name):
        """Theorem 1's lower bound must equal the published constraint."""
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        assert schedule.min_resources() == spec.constraints

    def test_different_seeds_give_different_graphs(self):
        first = load_benchmark("pr", seed=0)
        second = load_benchmark("pr", seed=1)
        assert [op.inputs for op in first.operations.values()] != [
            op.inputs for op in second.operations.values()
        ]


class TestFigure1:
    def test_shape_matches_figure(self):
        cdfg, start_times = figure1_example()
        assert cdfg.num_operations() == 8
        assert cdfg.num_operations("add") == 5
        assert cdfg.num_operations("mult") == 3
        schedule = Schedule(cdfg, start_times)
        schedule.validate()
        assert schedule.length == 3

    def test_step_contents(self):
        cdfg, start_times = figure1_example()
        schedule = Schedule(cdfg, start_times)
        step1 = schedule.operations_in_step(1)
        types1 = sorted(op.op_type for op in step1)
        assert types1 == ["add", "add", "mult"]

    def test_minimum_allocation_is_2_1(self):
        """The figure's final allocation: 2 adders and 1 multiplier."""
        cdfg, start_times = figure1_example()
        schedule = Schedule(cdfg, start_times)
        assert schedule.min_resources() == {"add": 2, "mult": 1}
