"""Tests for variable lifetime analysis."""

import pytest

from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import (
    Lifetime,
    compute_lifetimes,
    conflict_groups,
    live_variables,
    max_overlap,
    overlap_at,
)
from repro.cdfg.schedule import Schedule


def scheduled_chain():
    cdfg = CDFG()
    a = cdfg.add_input("a")
    b = cdfg.add_input("b")
    t1 = cdfg.add_operation("add", a, b)
    t2 = cdfg.add_operation("mult", t1, a)
    cdfg.mark_output(t2)
    schedule = Schedule(cdfg, {0: 1, 1: 2})
    return cdfg, schedule, (a, b, t1, t2)


class TestConventions:
    def test_primary_input_born_at_zero(self):
        _, schedule, (a, b, t1, t2) = scheduled_chain()
        lifetimes = compute_lifetimes(schedule)
        assert lifetimes[a].birth == 0
        # a is read by the mult at step 2.
        assert lifetimes[a].death == 2

    def test_intermediate_variable_span(self):
        _, schedule, (a, b, t1, t2) = scheduled_chain()
        lifetimes = compute_lifetimes(schedule)
        # t1 written at end of step 1, read at step 2.
        assert lifetimes[t1] == Lifetime(t1, 1, 2)

    def test_output_survives_past_end(self):
        _, schedule, (a, b, t1, t2) = scheduled_chain()
        lifetimes = compute_lifetimes(schedule)
        assert lifetimes[t2].death == schedule.length + 1

    def test_overlap_semantics(self):
        # Dying at t and born at t can share (read-before-write).
        first = Lifetime(0, 0, 2)
        second = Lifetime(1, 2, 4)
        assert not first.overlaps(second)
        third = Lifetime(2, 1, 3)
        assert first.overlaps(third)
        assert third.overlaps(first)

    def test_zero_span_never_overlaps(self):
        ghost = Lifetime(0, 3, 3)
        other = Lifetime(1, 0, 9)
        assert not ghost.overlaps(other)


class TestAggregates:
    def test_live_variables_excludes_zero_span(self):
        cdfg = CDFG()
        a = cdfg.add_input()
        out = cdfg.add_operation("add", a, a)
        cdfg.mark_output(out)
        schedule = Schedule(cdfg, {0: 1})
        live = live_variables(compute_lifetimes(schedule))
        assert {lt.var_id for lt in live} == {a, out}

    def test_max_overlap_counts_peak(self):
        _, schedule, (a, b, t1, t2) = scheduled_chain()
        lifetimes = compute_lifetimes(schedule)
        _, count = max_overlap(lifetimes)
        # Boundary after step 1: a (still read at 2), t1 -> 2 live; b died.
        assert count == 2

    def test_overlap_at_boundary(self):
        _, schedule, (a, b, t1, t2) = scheduled_chain()
        lifetimes = compute_lifetimes(schedule)
        live_after_1 = {lt.var_id for lt in overlap_at(lifetimes, 1)}
        assert live_after_1 == {a, t1}

    def test_conflict_groups_sorted_by_birth(self):
        _, schedule, _ = scheduled_chain()
        lifetimes = compute_lifetimes(schedule)
        for group in conflict_groups(lifetimes):
            births = [lt.birth for lt in group]
            assert births == sorted(births)

    def test_empty_graph(self):
        cdfg = CDFG()
        cdfg.add_input()
        schedule = Schedule(cdfg, {})
        assert max_overlap(compute_lifetimes(schedule)) == (0, 0)
        assert conflict_groups(compute_lifetimes(schedule)) == []
