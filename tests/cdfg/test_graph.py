"""Tests for the CDFG data structure."""

import pytest

from repro.errors import CDFGError
from repro.cdfg.graph import CDFG, RESOURCE_CLASS


def build_diamond() -> CDFG:
    cdfg = CDFG("diamond")
    a = cdfg.add_input("a")
    b = cdfg.add_input("b")
    t1 = cdfg.add_operation("add", a, b, "t1")
    t2 = cdfg.add_operation("mult", t1, a, "t2")
    t3 = cdfg.add_operation("sub", t1, b, "t3")
    t4 = cdfg.add_operation("add", t2, t3, "t4")
    cdfg.mark_output(t4)
    return cdfg


class TestConstruction:
    def test_valid_graph(self):
        cdfg = build_diamond()
        cdfg.validate()
        assert len(cdfg.operations) == 4
        assert len(cdfg.primary_inputs) == 2
        assert cdfg.primary_outputs != []

    def test_unknown_op_type_rejected(self):
        cdfg = CDFG()
        a = cdfg.add_input()
        with pytest.raises(CDFGError):
            cdfg.add_operation("divide", a, a)

    def test_unknown_operand_rejected(self):
        cdfg = CDFG()
        a = cdfg.add_input()
        with pytest.raises(CDFGError):
            cdfg.add_operation("add", a, 999)

    def test_unknown_output_rejected(self):
        cdfg = CDFG()
        with pytest.raises(CDFGError):
            cdfg.mark_output(3)

    def test_mark_output_idempotent(self):
        cdfg = CDFG()
        a = cdfg.add_input()
        out = cdfg.add_operation("add", a, a)
        cdfg.mark_output(out)
        cdfg.mark_output(out)
        assert cdfg.primary_outputs.count(out) == 1

    def test_resource_classes(self):
        cdfg = build_diamond()
        assert cdfg.resource_classes() == ["add", "mult"]
        assert RESOURCE_CLASS["sub"] == "add"

    def test_operation_counts_by_class(self):
        cdfg = build_diamond()
        assert cdfg.num_operations() == 4
        assert cdfg.num_operations("add") == 3  # add, sub, add
        assert cdfg.num_operations("mult") == 1


class TestQueries:
    def test_operation_of(self):
        cdfg = build_diamond()
        a = cdfg.primary_inputs[0]
        assert cdfg.operation_of(a) is None
        t1_out = cdfg.operations[0].output
        assert cdfg.operation_of(t1_out).name == "t1"

    def test_consumers_with_multiplicity(self):
        cdfg = CDFG()
        a = cdfg.add_input()
        out = cdfg.add_operation("mult", a, a)
        cdfg.mark_output(out)
        assert len(cdfg.consumers(a)) == 2

    def test_predecessors_deduplicated(self):
        cdfg = CDFG()
        a = cdfg.add_input()
        t1 = cdfg.add_operation("add", a, a)
        t2 = cdfg.add_operation("mult", t1, t1)
        cdfg.mark_output(t2)
        op2 = cdfg.operations[1]
        assert len(cdfg.predecessors(op2)) == 1

    def test_successor_map(self):
        cdfg = build_diamond()
        successors = cdfg.successor_map()
        assert {op.name for op in successors[0]} == {"t2", "t3"}
        assert successors[3] == []

    def test_topological_order(self):
        cdfg = build_diamond()
        order = [op.name for op in cdfg.topological_order()]
        assert order.index("t1") < order.index("t2")
        assert order.index("t1") < order.index("t3")
        assert order[-1] == "t4"

    def test_topological_order_deterministic(self):
        cdfg = build_diamond()
        assert cdfg.topological_order() == cdfg.topological_order()

    def test_edge_count(self):
        cdfg = build_diamond()
        # 4 binary ops + 1 primary output.
        assert cdfg.num_edges() == 9

    def test_repr_mentions_counts(self):
        assert "ops=4" in repr(build_diamond())
