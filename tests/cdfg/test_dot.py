"""Tests for the Graphviz export."""

from repro.cdfg import Schedule, figure1_example
from repro.cdfg.dot import cdfg_to_dot


def test_plain_export_contains_nodes_and_edges():
    cdfg, _ = figure1_example()
    text = cdfg_to_dot(cdfg)
    assert text.startswith("digraph")
    assert text.rstrip().endswith("}")
    for op in cdfg.operations.values():
        assert f"o{op.op_id} " in text
    assert "->" in text


def test_scheduled_export_groups_by_step():
    cdfg, start_times = figure1_example()
    schedule = Schedule(cdfg, start_times)
    text = cdfg_to_dot(cdfg, schedule)
    assert "cluster_step1" in text
    assert "cluster_step3" in text
    assert 'label="cstep 2"' in text


def test_outputs_rendered():
    cdfg, _ = figure1_example()
    text = cdfg_to_dot(cdfg)
    assert "out0" in text and "out1" in text
