"""Tests for scheduled CDFGs."""

import pytest

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG
from repro.cdfg.schedule import Schedule


def chain_cdfg() -> CDFG:
    cdfg = CDFG("chain")
    a = cdfg.add_input("a")
    b = cdfg.add_input("b")
    t1 = cdfg.add_operation("add", a, b)
    t2 = cdfg.add_operation("mult", t1, a)
    t3 = cdfg.add_operation("add", t2, b)
    cdfg.mark_output(t3)
    return cdfg


class TestValidation:
    def test_valid_chain(self):
        cdfg = chain_cdfg()
        schedule = Schedule(cdfg, {0: 1, 1: 2, 2: 3})
        schedule.validate()
        assert schedule.length == 3

    def test_dependence_violation_detected(self):
        cdfg = chain_cdfg()
        schedule = Schedule(cdfg, {0: 1, 1: 1, 2: 2})
        with pytest.raises(ScheduleError):
            schedule.validate()

    def test_unscheduled_op_detected(self):
        cdfg = chain_cdfg()
        schedule = Schedule(cdfg, {0: 1, 1: 2})
        with pytest.raises(ScheduleError):
            schedule.validate()

    def test_step_zero_rejected(self):
        cdfg = chain_cdfg()
        schedule = Schedule(cdfg, {0: 0, 1: 1, 2: 2})
        with pytest.raises(ScheduleError):
            schedule.validate()

    def test_missing_latency_rejected(self):
        cdfg = chain_cdfg()
        with pytest.raises(ScheduleError):
            Schedule(cdfg, {0: 1, 1: 2, 2: 3}, latencies={"add": 1})


class TestMultiCycle:
    def test_multicycle_latency_shifts_dependents(self):
        cdfg = chain_cdfg()
        latencies = {"add": 1, "mult": 3}
        bad = Schedule(cdfg, {0: 1, 1: 2, 2: 3}, latencies)
        with pytest.raises(ScheduleError):
            bad.validate()
        good = Schedule(cdfg, {0: 1, 1: 2, 2: 5}, latencies)
        good.validate()
        assert good.length == 5

    def test_busy_interval(self):
        cdfg = chain_cdfg()
        schedule = Schedule(
            cdfg, {0: 1, 1: 2, 2: 5}, {"add": 1, "mult": 3}
        )
        mult = cdfg.operations[1]
        assert schedule.busy_interval(mult) == (2, 4)

    def test_overlap_with_multicycle(self):
        cdfg = CDFG()
        a = cdfg.add_input()
        m1 = cdfg.add_operation("mult", a, a)
        m2 = cdfg.add_operation("mult", a, a)
        cdfg.mark_output(m1)
        cdfg.mark_output(m2)
        schedule = Schedule(cdfg, {0: 1, 1: 2}, {"add": 1, "mult": 3})
        op1, op2 = cdfg.operations[0], cdfg.operations[1]
        assert schedule.overlaps(op1, op2)


class TestStepQueries:
    def test_operations_in_step(self):
        cdfg = chain_cdfg()
        schedule = Schedule(cdfg, {0: 1, 1: 2, 2: 3})
        assert [op.op_id for op in schedule.operations_in_step(2)] == [1]
        assert schedule.operations_in_step(2, "add") == []

    def test_densest_step(self):
        cdfg = CDFG()
        a = cdfg.add_input()
        outs = [cdfg.add_operation("add", a, a) for _ in range(3)]
        for out in outs:
            cdfg.mark_output(out)
        schedule = Schedule(cdfg, {0: 1, 1: 1, 2: 2})
        step, count = schedule.densest_step("add")
        assert (step, count) == (1, 2)

    def test_min_resources(self):
        cdfg = chain_cdfg()
        schedule = Schedule(cdfg, {0: 1, 1: 2, 2: 3})
        assert schedule.min_resources() == {"add": 1, "mult": 1}

    def test_respects_constraints(self):
        cdfg = CDFG()
        a = cdfg.add_input()
        for _ in range(3):
            cdfg.mark_output(cdfg.add_operation("add", a, a))
        schedule = Schedule(cdfg, {0: 1, 1: 1, 2: 1})
        assert schedule.respects({"add": 3})
        assert not schedule.respects({"add": 2})

    def test_empty_schedule_length_zero(self):
        cdfg = CDFG()
        cdfg.add_input()
        schedule = Schedule(cdfg, {})
        assert schedule.length == 0
