"""Tests for the synthetic CDFG generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CDFGError
from repro.cdfg.generate import GraphProfile, generate_cdfg


def profile_strategy():
    return st.builds(
        GraphProfile,
        name=st.just("prop"),
        n_inputs=st.integers(2, 10),
        n_outputs=st.integers(1, 6),
        n_adds=st.integers(2, 30),
        n_mults=st.integers(2, 30),
    ).filter(
        lambda p: p.n_outputs <= p.n_operations
        and p.n_inputs <= p.n_operations + p.n_outputs
    )


class TestProfiles:
    def test_counts_matched_exactly(self):
        profile = GraphProfile("t", 6, 4, 20, 12)
        cdfg = generate_cdfg(profile, seed=1)
        assert len(cdfg.primary_inputs) == 6
        assert len(cdfg.primary_outputs) == 4
        adds = sum(
            1 for op in cdfg.operations.values() if op.op_type == "add"
        )
        mults = sum(
            1 for op in cdfg.operations.values() if op.op_type == "mult"
        )
        assert adds == 20
        assert mults == 12

    def test_determinism(self):
        profile = GraphProfile("t", 5, 3, 15, 10)
        first = generate_cdfg(profile, seed=7)
        second = generate_cdfg(profile, seed=7)
        assert [op.inputs for op in first.topological_order()] == [
            op.inputs for op in second.topological_order()
        ]

    def test_seeds_differ(self):
        profile = GraphProfile("t", 5, 3, 15, 10)
        first = generate_cdfg(profile, seed=1)
        second = generate_cdfg(profile, seed=2)
        assert [op.inputs for op in first.operations.values()] != [
            op.inputs for op in second.operations.values()
        ]

    def test_every_input_consumed(self):
        profile = GraphProfile("t", 8, 4, 12, 8)
        cdfg = generate_cdfg(profile, seed=3)
        readers = cdfg.consumer_map()
        for var_id in cdfg.primary_inputs:
            assert readers[var_id], f"input {var_id} unused"

    def test_no_dead_code(self):
        profile = GraphProfile("t", 6, 3, 18, 9)
        cdfg = generate_cdfg(profile, seed=4)
        readers = cdfg.consumer_map()
        outputs = set(cdfg.primary_outputs)
        for op in cdfg.operations.values():
            assert readers[op.output] or op.output in outputs

    def test_layered_profile_bounds_density(self):
        profile = GraphProfile(
            "t", 6, 4, 24, 12, n_layers=8, add_width=3, mult_width=2
        )
        cdfg = generate_cdfg(profile, seed=0)
        from repro.scheduling import list_schedule

        schedule = list_schedule(cdfg, {"add": 3, "mult": 2})
        assert schedule.min_resources() == {"add": 3, "mult": 2}

    @settings(max_examples=25, deadline=None)
    @given(profile_strategy(), st.integers(0, 5))
    def test_random_profiles_satisfied(self, profile, seed):
        cdfg = generate_cdfg(profile, seed=seed)
        cdfg.validate()
        assert len(cdfg.primary_inputs) == profile.n_inputs
        assert len(cdfg.primary_outputs) == profile.n_outputs
        assert cdfg.num_operations() == profile.n_operations


class TestStress:
    def test_many_random_profiles(self):
        """Broad deterministic sweep over feasible profiles (regression
        guard for the layer/funnel/sink machinery)."""
        import random

        rng = random.Random(99)
        for trial in range(60):
            adds = rng.randint(2, 40)
            mults = rng.randint(2, 40)
            ops = adds + mults
            outs = rng.randint(1, min(8, ops))
            ins = rng.randint(2, min(10, ops + outs))
            profile = GraphProfile("stress", ins, outs, adds, mults)
            cdfg = generate_cdfg(profile, seed=trial % 7)
            cdfg.validate()
            assert cdfg.num_operations("mult") == mults
            assert len(cdfg.primary_outputs) == outs

    def test_extreme_type_skew(self):
        for adds, mults in ((2, 23), (25, 3), (13, 25), (21, 11)):
            cdfg = generate_cdfg(
                GraphProfile("skew", 2, 1, adds, mults), seed=0
            )
            cdfg.validate()


class TestValidation:
    def test_too_many_outputs_rejected(self):
        with pytest.raises(CDFGError):
            GraphProfile("t", 2, 5, 2, 2).validate()

    def test_too_many_inputs_rejected(self):
        with pytest.raises(CDFGError):
            GraphProfile("t", 20, 1, 2, 2).validate()

    def test_overfull_layers_rejected(self):
        with pytest.raises(CDFGError):
            GraphProfile(
                "t", 2, 1, 10, 1, n_layers=2, add_width=2, mult_width=1
            ).validate()

    def test_zero_ops_rejected(self):
        with pytest.raises(CDFGError):
            GraphProfile("t", 1, 1, 0, 0).validate()
