"""Daemon tests: HTTP round trips, byte-identical responses versus the
direct flow entry points, in-flight deduplication, priority ordering,
streaming sweeps, and metrics."""

import asyncio
import json

import pytest

from repro.cdfg import benchmark_spec, load_benchmark
from repro.flow import FlowConfig, SweepSpec, run_sweep
from repro.flow.run import run_estimate, run_flow
from repro.scheduling import list_schedule
from repro.serve import FlowServer, ServeConfig
from repro.serve.api import single_cell_spec
from repro.serve.server import PRIORITY_SINGLE, PRIORITY_SWEEP


def run_scenario(scenario, config=None):
    """Start a daemon on an ephemeral port, run one async scenario
    against it, and always stop it."""

    async def runner():
        server = FlowServer(config or ServeConfig(port=0))
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.stop()

    return asyncio.run(runner())


async def http_request(port, method, path, body=None):
    """One HTTP/1.1 request; returns (status, headers, body bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: test\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    return _parse_response(raw)


def _parse_response(raw):
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding") == "chunked":
        body = _dechunk(body)
    return status, headers, body


def _dechunk(body):
    out = b""
    rest = body
    while rest:
        size_line, _, rest = rest.partition(b"\r\n")
        size = int(size_line, 16)
        if size == 0:
            break
        out += rest[:size]
        rest = rest[size + 2:]  # skip payload + trailing CRLF
    return out


def _direct_estimate_metrics(benchmark, **config_overrides):
    spec = benchmark_spec(benchmark)
    schedule = list_schedule(load_benchmark(benchmark), spec.constraints)
    config = FlowConfig(flow="estimate", **config_overrides)
    return run_estimate(
        schedule, spec.constraints, "hlpower", config
    ).metrics()


class TestSingleCellEndpoints:
    def test_estimate_byte_identical_to_run_estimate(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/estimate",
                {"benchmark": "pr", "width": 4},
            )

        status, _, body = run_scenario(scenario)
        assert status == 200
        payload = json.loads(body)
        assert payload["benchmark"] == "pr"
        assert payload["config"] == "hlpower"
        assert payload["metrics"] == _direct_estimate_metrics(
            "pr", width=4
        )

    def test_flow_byte_identical_to_run_flow(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/flow",
                {"benchmark": "pr", "width": 4, "n_vectors": 16,
                 "binder": "lopass"},
            )

        status, _, body = run_scenario(scenario)
        assert status == 200
        payload = json.loads(body)
        spec = benchmark_spec("pr")
        schedule = list_schedule(load_benchmark("pr"), spec.constraints)
        direct = run_flow(
            schedule, spec.constraints, "lopass",
            FlowConfig(width=4, n_vectors=16),
        )
        assert payload["metrics"] == direct.metrics()

    def test_repeated_request_served_warm_and_identical(self):
        async def scenario(server):
            first = await http_request(
                server.port, "POST", "/estimate",
                {"benchmark": "pr", "width": 4},
            )
            second = await http_request(
                server.port, "POST", "/estimate",
                {"benchmark": "pr", "width": 4},
            )
            return first, second, server.executor.stats

        (s1, _, b1), (s2, _, b2), stats = run_scenario(scenario)
        assert s1 == s2 == 200
        assert json.loads(b1)["metrics"] == json.loads(b2)["metrics"]
        # The second request's cells were all cache hits on the
        # resident executor.
        assert stats.cache.hits > 0

    def test_validation_errors_are_400(self):
        async def scenario(server):
            missing = await http_request(
                server.port, "POST", "/estimate", {}
            )
            unknown = await http_request(
                server.port, "POST", "/estimate", {"benchmark": "nope"}
            )
            badjson = await http_request(
                server.port, "POST", "/estimate"
            )
            return missing, unknown, badjson

        missing, unknown, badjson = run_scenario(scenario)
        assert missing[0] == 400
        assert unknown[0] == 400
        assert badjson[0] == 200 or badjson[0] == 400  # empty body = {}
        assert b"benchmark" in missing[2]

    def test_unroutable_requests(self):
        async def scenario(server):
            not_found = await http_request(server.port, "GET", "/nope")
            wrong_method = await http_request(
                server.port, "GET", "/estimate"
            )
            return not_found, wrong_method

        not_found, wrong_method = run_scenario(scenario)
        assert not_found[0] == 404
        assert wrong_method[0] == 405


class TestDeduplication:
    def test_identical_inflight_requests_share_one_computation(self):
        async def scenario(server):
            body = {"benchmark": "pr", "width": 4}
            responses = await asyncio.gather(*[
                http_request(server.port, "POST", "/estimate", body)
                for _ in range(8)
            ])
            metrics = await http_request(server.port, "GET", "/metrics")
            return responses, json.loads(metrics[2])

        responses, metrics = run_scenario(scenario)
        bodies = {body for _, _, body in responses}
        assert all(status == 200 for status, _, _ in responses)
        # Byte-identical shared result for every waiter.
        assert len(bodies) == 1
        assert metrics["deduped"] > 0
        # Dedup means strictly fewer executor submissions than requests.
        assert metrics["executor"]["submissions"] < 8
        assert metrics["requests"]["estimate"] == 8

    def test_submit_level_dedup_is_exact(self):
        """Two identical submissions share one future; a different
        request gets its own."""

        async def scenario():
            server = FlowServer(ServeConfig(port=0))
            # No start(): the queue accepts submissions without the
            # scheduler running, so the in-flight window is inspectable.
            spec_a = single_cell_spec({"benchmark": "pr"}, "estimate")
            spec_b = single_cell_spec(
                {"benchmark": "pr", "width": 4}, "estimate"
            )
            f1 = server._submit("estimate", spec_a, PRIORITY_SINGLE)
            f2 = server._submit("estimate", spec_a, PRIORITY_SINGLE)
            f3 = server._submit("estimate", spec_b, PRIORITY_SINGLE)
            return f1 is f2, f1 is f3, server.deduped, len(server._heap)

        shared, distinct, deduped, depth = asyncio.run(scenario())
        assert shared
        assert not distinct
        assert deduped == 1
        assert depth == 2  # the duplicate never re-enqueued


class TestPriorityQueue:
    def test_lower_priority_number_runs_first(self):
        async def scenario():
            server = FlowServer(ServeConfig(port=0))
            spec = single_cell_spec({"benchmark": "pr"}, "estimate")
            slow = single_cell_spec({"benchmark": "chem"}, "estimate")
            wide = single_cell_spec({"benchmark": "dir"}, "estimate")
            server._submit("estimate", slow, PRIORITY_SWEEP)
            server._submit("estimate", spec, PRIORITY_SINGLE)
            server._submit("estimate", wide, 5)
            import heapq
            order = []
            heap = list(server._heap)
            while heap:
                _, _, key = heapq.heappop(heap)
                order.append(server._inflight[key].spec.benchmarks[0])
            return order

        assert asyncio.run(scenario()) == ["pr", "dir", "chem"]

    def test_queue_limit_maps_to_503(self):
        async def scenario(server):
            # queue_limit=0: every submission is refused immediately.
            return await http_request(
                server.port, "POST", "/estimate", {"benchmark": "pr"}
            )

        status, _, body = run_scenario(
            scenario, ServeConfig(port=0, queue_limit=0)
        )
        assert status == 503
        assert b"queue full" in body


class TestSweepStreaming:
    def test_sweep_streams_cells_and_matches_run_sweep(self):
        spec_dict = {
            "benchmarks": ["pr"],
            "binders": ["lopass", "hlpower"],
            "widths": [4],
            "vector_seeds": [7, 8],
            "n_vectors": 16,
        }

        async def scenario(server):
            return await http_request(
                server.port, "POST", "/sweep", {"spec": spec_dict}
            )

        status, headers, body = run_scenario(scenario)
        assert status == 200
        assert headers["content-type"] == "application/x-ndjson"
        lines = [json.loads(line) for line in body.splitlines() if line]
        cells = [line["cell"] for line in lines if "cell" in line]
        (summary,) = [
            line["summary"] for line in lines if "summary" in line
        ]
        direct = run_sweep(SweepSpec(**{
            key: value for key, value in spec_dict.items()
        }))
        assert len(cells) == len(direct.cells) == summary["cells"]
        assert [c["metrics"] for c in cells] == \
            [c.metrics for c in direct.cells]
        # PR 6's fingerprint-grouped batching ran on the daemon too.
        assert summary["sim_batches"] == direct.sim_batches > 0

    def test_bad_sweep_spec_is_400(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/sweep", {"benchmarks": []}
            )

        status, _, _ = run_scenario(scenario)
        assert status == 400


class TestMetricsEndpoint:
    def test_counters_and_executor_stats_present(self):
        async def scenario(server):
            await http_request(
                server.port, "POST", "/estimate", {"benchmark": "pr"}
            )
            await http_request(server.port, "GET", "/healthz")
            return await http_request(server.port, "GET", "/metrics")

        status, _, body = run_scenario(scenario)
        assert status == 200
        metrics = json.loads(body)
        assert metrics["requests"]["estimate"] == 1
        assert metrics["requests"]["healthz"] == 1
        assert metrics["cells_served"] == 1
        assert metrics["queue_depth"] == 0
        assert metrics["inflight"] == 0
        assert metrics["executor"]["submissions"] == 1
        assert "hit_rate" in metrics["executor"]["cache"]
        assert metrics["uptime_s"] >= 0.0
