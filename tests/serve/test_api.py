"""Request-model tests: normalization, validation, dedup keys."""

import pytest

from repro.serve.api import (
    RequestError,
    request_key,
    request_priority,
    single_cell_spec,
    sweep_spec,
)
from repro.flow.grid import SweepSpec, expand_grid


class TestSingleCellSpec:
    def test_minimal_estimate_request(self):
        spec = single_cell_spec({"benchmark": "pr"}, "estimate")
        jobs = expand_grid(spec)
        assert len(jobs) == 1
        job = jobs[0]
        assert job.benchmark == "pr"
        assert job.config.binder == "hlpower"
        assert job.width == 8
        assert spec.flow == "estimate"

    def test_flow_request_carries_sim_knobs(self):
        spec = single_cell_spec(
            {
                "benchmark": "chem", "binder": "lopass", "width": 4,
                "vector_seed": 11, "n_vectors": 32, "delay_jitter": 2,
                "idle_selects": "hold", "sim_kernel": "reference",
            },
            "full",
        )
        (job,) = expand_grid(spec)
        assert job.vector_seed == 11
        assert job.delay_jitter == 2
        assert job.idle_selects == "hold"
        assert job.sim_kernel == "reference"
        assert spec.n_vectors == 32

    def test_estimate_rejects_simulation_fields(self):
        with pytest.raises(RequestError):
            single_cell_spec(
                {"benchmark": "pr", "vector_seed": 9}, "estimate"
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestError):
            single_cell_spec({"benchmark": "pr", "bencmark": "pr"}, "full")

    def test_missing_benchmark_rejected(self):
        with pytest.raises(RequestError):
            single_cell_spec({}, "estimate")

    def test_bad_value_types_rejected(self):
        with pytest.raises(RequestError):
            single_cell_spec({"benchmark": "pr", "width": "wide"}, "full")
        with pytest.raises(RequestError):
            single_cell_spec({"benchmark": "pr", "width": True}, "full")

    def test_unknown_benchmark_rejected_at_parse_time(self):
        with pytest.raises(RequestError):
            single_cell_spec({"benchmark": "nope"}, "estimate")

    def test_non_object_body_rejected(self):
        with pytest.raises(RequestError):
            single_cell_spec(["pr"], "estimate")


class TestSweepSpecRequest:
    def test_wrapped_and_bare_bodies_equivalent(self):
        payload = {"benchmarks": ["pr"], "widths": [4]}
        bare = sweep_spec(dict(payload))
        wrapped = sweep_spec({"spec": dict(payload), "priority": 3})
        assert bare.to_dict() == wrapped.to_dict()

    def test_invalid_spec_rejected(self):
        with pytest.raises(RequestError):
            sweep_spec({"benchmarks": []})
        with pytest.raises(RequestError):
            sweep_spec({"benchmarks": ["pr"], "bogus_axis": [1]})


class TestRequestKey:
    def test_defaults_and_explicit_defaults_share_a_key(self):
        implicit = single_cell_spec({"benchmark": "pr"}, "estimate")
        explicit = single_cell_spec(
            {"benchmark": "pr", "binder": "hlpower", "alpha": 0.5,
             "width": 8, "k": 4},
            "estimate",
        )
        assert request_key("estimate", implicit) == \
            request_key("estimate", explicit)

    def test_distinct_requests_get_distinct_keys(self):
        a = single_cell_spec({"benchmark": "pr"}, "estimate")
        b = single_cell_spec({"benchmark": "pr", "width": 4}, "estimate")
        assert request_key("estimate", a) != request_key("estimate", b)

    def test_kind_is_part_of_the_key(self):
        spec = single_cell_spec({"benchmark": "pr"}, "full")
        assert request_key("flow", spec) != request_key("sweep", spec)


class TestPriority:
    def test_default_and_explicit(self):
        assert request_priority({}, 10) == 10
        assert request_priority({"priority": -5}, 10) == -5

    def test_bad_priority_rejected(self):
        with pytest.raises(RequestError):
            request_priority({"priority": "high"}, 0)
        with pytest.raises(RequestError):
            request_priority({"priority": True}, 0)
