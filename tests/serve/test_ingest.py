"""POST /ingest: external designs against the live daemon."""

import json

import pytest

from repro.flow.run import FlowConfig
from repro.ingest import load_design_text, run_design_estimate
from repro.serve.api import RequestError, ingest_spec
from tests.serve.test_server import http_request, run_scenario

MODULE = {
    "format": "repro-module-v1",
    "name": "tiny",
    "signals": [
        {"name": "a", "width": 2, "input": True},
        {"name": "b", "width": 2, "input": True},
        {"name": "s", "width": 2},
        {"name": "r", "width": 2, "reg": True, "init": 2},
        {"name": "y", "width": 2, "output": True},
    ],
    "ops": [
        {"op": "add", "inputs": ["a", "b"], "output": "s"},
        {"op": "dff", "inputs": ["s"], "output": "r"},
        {"op": "xor", "inputs": ["r", "a"], "output": "y"},
    ],
}


class TestIngestSpec:
    def test_defaults(self):
        spec = ingest_spec({"design": MODULE})
        assert spec.flow == "estimate"
        # With no explicit name the design's own declared name is used.
        assert spec.designs == {"tiny": json.dumps(MODULE)}
        assert spec.k == 4 and spec.map_effort == "fast"

    def test_name_and_knobs(self):
        spec = ingest_spec({"design": MODULE, "name": "tiny",
                            "k": 6, "map_effort": "exhaustive"})
        assert list(spec.designs) == ["tiny"]
        assert spec.k == 6 and spec.map_effort == "exhaustive"

    def test_design_required(self):
        with pytest.raises(RequestError, match="design"):
            ingest_spec({"name": "tiny"})

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestError, match="width"):
            ingest_spec({"design": MODULE, "width": 8})

    def test_malformed_design_rejected(self):
        broken = json.loads(json.dumps(MODULE))
        del broken["ops"][2]
        with pytest.raises(RequestError, match="never driven"):
            ingest_spec({"design": broken})


class TestIngestEndpoint:
    def test_byte_identical_to_direct_run(self):
        async def scenario(server):
            first = await http_request(
                server.port, "POST", "/ingest",
                {"design": MODULE, "name": "tiny"},
            )
            second = await http_request(
                server.port, "POST", "/ingest",
                {"design": MODULE, "name": "tiny"},
            )
            return first, second

        first, second = run_scenario(scenario)
        for status, _, _ in (first, second):
            assert status == 200
        payload = json.loads(first[2])
        assert payload["benchmark"] == "design:tiny"
        assert payload["config"] == "ingest"
        direct = run_design_estimate(
            load_design_text(json.dumps(MODULE), name="tiny"),
            FlowConfig(k=4, map_effort="fast", flow="estimate"),
        )
        assert payload["metrics"] == direct.metrics()
        # The daemon's warm path substitutes byte-identical artifacts.
        assert json.loads(second[2])["metrics"] == payload["metrics"]

    def test_blif_design_accepted(self):
        blif = (".model t\n.inputs a b\n.outputs y\n"
                ".names a b y\n11 1\n.end\n")

        async def scenario(server):
            return await http_request(
                server.port, "POST", "/ingest", {"design": blif},
            )

        status, _, body = run_scenario(scenario)
        assert status == 200
        assert json.loads(body)["benchmark"] == "design:t"

    def test_malformed_module_is_400(self):
        broken = json.loads(json.dumps(MODULE))
        del broken["ops"][2]

        async def scenario(server):
            response = await http_request(
                server.port, "POST", "/ingest", {"design": broken},
            )
            metrics = await http_request(server.port, "GET", "/metrics")
            return response, metrics

        (status, _, body), (_, _, metrics_body) = run_scenario(scenario)
        assert status == 400
        assert b"never driven" in body
        # Only accepted submissions count under "ingest"; rejects are
        # errors — the same accounting every endpoint uses.
        counters = json.loads(metrics_body)["requests"]
        assert counters["ingest"] == 0
        assert counters["errors"] == 1
