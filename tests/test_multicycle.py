"""End-to-end tests for multi-cycle resources (the paper's future work).

Theorem 1 only covers single-cycle libraries; the binder, datapath and
simulator nevertheless support multi-cycle latencies ("our experiments
show that the algorithm is nonetheless effective"). These tests verify
the full pipeline stays *functionally correct* with a 2-cycle
multiplier: selects held over the busy interval, operands alive until
the op's final step, and simulated outputs equal to the CDFG's
arithmetic.
"""

import pytest

from repro.binding import HLPowerConfig, bind_hlpower, bind_lopass
from repro.binding.sa_table import SATable, SATableConfig
from repro.cdfg import load_benchmark
from repro.cdfg.generate import GraphProfile, generate_cdfg
from repro.fpga import (
    ElaboratedDesign,
    elaborate_datapath,
    random_vectors,
    simulate_design,
)
from repro.fpga.simulate import golden_outputs
from repro.rtl import build_datapath
from repro.scheduling import list_schedule
from repro.techmap import map_netlist

_TABLE = SATable(SATableConfig(width=3))
_LATENCIES = {"add": 1, "mult": 2}


def run_multicycle(cdfg, constraints, binder, idle_selects, lanes=24):
    schedule = list_schedule(cdfg, constraints, latencies=_LATENCIES)
    if binder == "hlpower":
        solution = bind_hlpower(
            schedule, constraints, config=HLPowerConfig(sa_table=_TABLE)
        )
    else:
        solution = bind_lopass(schedule, constraints)
    solution.validate()
    datapath = build_datapath(solution, width=4)
    design = elaborate_datapath(datapath)
    mapping = map_netlist(design.netlist, k=4)
    mapped = ElaboratedDesign(
        datapath, mapping.netlist, design.pad_nets, design.register_nets,
        design.fu_nets, design.control_nets, design.output_nets,
    )
    vectors = random_vectors(len(design.pad_nets), 4, lanes, seed=21)
    sim = simulate_design(mapped, vectors, idle_selects=idle_selects)
    return sim.outputs, golden_outputs(mapped, vectors), datapath


class TestMultiCycleCorrectness:
    @pytest.mark.parametrize("binder", ["hlpower", "lopass"])
    @pytest.mark.parametrize("idle", ["zero", "hold"])
    def test_benchmark_pr(self, binder, idle):
        cdfg = load_benchmark("pr")
        outputs, golden, _ = run_multicycle(
            cdfg, {"add": 2, "mult": 2}, binder, idle
        )
        assert outputs == golden

    def test_random_graphs(self):
        for seed in (1, 5, 9):
            profile = GraphProfile("mc", 4, 2, 8, 6)
            cdfg = generate_cdfg(profile, seed=seed)
            outputs, golden, _ = run_multicycle(
                cdfg, {"add": 2, "mult": 2}, "hlpower", "zero"
            )
            assert outputs == golden

    def test_selects_held_over_busy_interval(self):
        cdfg = load_benchmark("pr")
        _, _, datapath = run_multicycle(
            cdfg, {"add": 2, "mult": 2}, "hlpower", "zero"
        )
        schedule = datapath.solution.schedule
        for op in schedule.cdfg.operations.values():
            if op.resource_class != "mult":
                continue
            unit = datapath.solution.fus.unit_of(op.op_id)
            start, end = schedule.busy_interval(op)
            assert end == start + 1  # 2-cycle multiplier
            first = datapath.control[start].fu_selects[unit.fu_id]
            second = datapath.control[end].fu_selects[unit.fu_id]
            assert first == second

    def test_operand_lifetimes_cover_busy_interval(self):
        from repro.cdfg.lifetimes import compute_lifetimes

        cdfg = load_benchmark("pr")
        schedule = list_schedule(
            cdfg, {"add": 2, "mult": 2}, latencies=_LATENCIES
        )
        lifetimes = compute_lifetimes(schedule)
        for op in cdfg.operations.values():
            for var_id in op.inputs:
                assert lifetimes[var_id].death >= schedule.end_of(op)
