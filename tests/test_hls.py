"""Tests for the integrated HLS driver."""

import pytest

from repro.errors import ConfigError
from repro import HLSConfig, benchmark_spec, load_benchmark, synthesize
from repro.binding.sa_table import SATable, SATableConfig

_TABLE = SATable(SATableConfig(width=3))


class TestSynthesize:
    def test_list_scheduled_flow(self):
        spec = benchmark_spec("pr")
        result = synthesize(
            load_benchmark("pr"),
            spec.constraints,
            HLSConfig(sa_table=_TABLE),
        )
        assert result.allocation == spec.constraints
        assert result.schedule.length == spec.paper_cycles
        assert "entity design is" in result.vhdl
        assert result.muxes.n_fus == sum(spec.constraints.values())

    def test_force_scheduled_flow_defaults_constraints(self):
        result = synthesize(
            load_benchmark("pr"),
            config=HLSConfig(scheduler="force", latency=20, sa_table=_TABLE),
        )
        assert result.schedule.length <= 20
        assert result.allocation == result.schedule.min_resources()

    def test_list_without_constraints_rejected(self):
        with pytest.raises(ConfigError):
            synthesize(load_benchmark("pr"), config=HLSConfig(sa_table=_TABLE))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigError):
            synthesize(
                load_benchmark("pr"),
                {"add": 2, "mult": 2},
                HLSConfig(scheduler="magic", sa_table=_TABLE),
            )

    def test_unknown_binder_rejected(self):
        with pytest.raises(ConfigError):
            synthesize(
                load_benchmark("pr"),
                {"add": 2, "mult": 2},
                HLSConfig(binder="magic", sa_table=_TABLE),
            )

    def test_baseline_binder(self):
        spec = benchmark_spec("wang")
        result = synthesize(
            load_benchmark("wang"),
            spec.constraints,
            HLSConfig(binder="lopass", sa_table=_TABLE),
        )
        assert result.allocation == spec.constraints
        assert result.solution.algorithm.startswith("lopass")

    def test_port_optimization_toggle(self):
        spec = benchmark_spec("pr")
        with_opt = synthesize(
            load_benchmark("pr"), spec.constraints,
            HLSConfig(sa_table=_TABLE, optimize_port_assignment=True),
        )
        without = synthesize(
            load_benchmark("pr"), spec.constraints,
            HLSConfig(sa_table=_TABLE, optimize_port_assignment=False),
        )
        assert without.port_flips == 0
        assert with_opt.muxes.fu_mux_length <= without.muxes.fu_mux_length

    def test_custom_entity_name(self):
        spec = benchmark_spec("pr")
        result = synthesize(
            load_benchmark("pr"), spec.constraints,
            HLSConfig(sa_table=_TABLE), entity="pr_core",
        )
        assert "entity pr_core is" in result.vhdl

    def test_multicycle_latencies(self):
        spec = benchmark_spec("pr")
        result = synthesize(
            load_benchmark("pr"),
            spec.constraints,
            HLSConfig(sa_table=_TABLE, latencies={"add": 1, "mult": 2}),
        )
        result.solution.validate()
        assert result.schedule.latencies["mult"] == 2


class TestCLI:
    def test_profiles_command(self, capsys):
        from repro.cli import main

        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "chem" in out and "cycles" in out

    def test_synth_command(self, capsys, tmp_path):
        from repro.cli import main

        vhdl = tmp_path / "pr.vhd"
        assert main(["synth", "pr", "--width", "4", "--vhdl", str(vhdl)]) == 0
        out = capsys.readouterr().out
        assert "allocation" in out
        assert vhdl.exists()
        assert "entity pr is" in vhdl.read_text()

    def test_bench_command(self, capsys, tmp_path):
        from repro.cli import main

        code = main([
            "bench", "pr", "--width", "4", "--vectors", "16",
            "--sa-table", str(tmp_path / "t.txt"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "LOPASS" in out and "HLPower" in out

    def test_bad_benchmark_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["bench", "nonexistent"])
