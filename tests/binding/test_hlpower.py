"""Tests for the HLPower binder (Algorithm 1)."""

import pytest

from repro.errors import ResourceError
from repro.binding import (
    HLPowerConfig,
    assign_ports,
    bind_hlpower,
    bind_registers,
)
from repro.cdfg import Schedule, benchmark_spec, figure1_example, load_benchmark
from repro.scheduling import list_schedule


def figure1_sched():
    cdfg, start_times = figure1_example()
    return Schedule(cdfg, start_times)


class TestFigure1:
    def test_reaches_minimum_allocation(self, sa_table):
        """The paper's worked example ends with 2 adders and 1 mult."""
        schedule = figure1_sched()
        solution = bind_hlpower(
            schedule,
            {"add": 2, "mult": 1},
            config=HLPowerConfig(sa_table=sa_table),
        )
        assert solution.fus.allocation() == {"add": 2, "mult": 1}
        assert solution.fus.constraint_met

    def test_solution_validates(self, sa_table):
        schedule = figure1_sched()
        solution = bind_hlpower(
            schedule,
            {"add": 2, "mult": 1},
            config=HLPowerConfig(sa_table=sa_table),
        )
        solution.validate()
        assert solution.algorithm == "hlpower"
        assert solution.runtime_s >= 0

    def test_looser_constraint_stops_early(self, sa_table):
        schedule = figure1_sched()
        solution = bind_hlpower(
            schedule,
            {"add": 4, "mult": 2},
            config=HLPowerConfig(sa_table=sa_table),
        )
        allocation = solution.fus.allocation()
        assert allocation["add"] <= 4
        assert allocation["mult"] <= 2
        assert solution.fus.constraint_met

    def test_run_to_exhaustion_reaches_minimum(self, sa_table):
        schedule = figure1_sched()
        config = HLPowerConfig(sa_table=sa_table, stop_at_constraint=False)
        solution = bind_hlpower(schedule, {"add": 5, "mult": 3}, config=config)
        assert solution.fus.allocation() == {"add": 2, "mult": 1}

    def test_missing_constraint_rejected(self, sa_table):
        schedule = figure1_sched()
        with pytest.raises(ResourceError):
            bind_hlpower(
                schedule, {"add": 2}, config=HLPowerConfig(sa_table=sa_table)
            )


class TestBenchmarks:
    @pytest.mark.parametrize("name", ["pr", "wang"])
    def test_benchmark_binding_valid_and_minimal(self, name, sa_table):
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        solution = bind_hlpower(
            schedule,
            spec.constraints,
            config=HLPowerConfig(sa_table=sa_table),
        )
        solution.validate()
        assert solution.fus.allocation() == spec.constraints
        assert solution.fus.constraint_met

    def test_deterministic(self, sa_table):
        spec = benchmark_spec("pr")
        schedule = list_schedule(load_benchmark("pr"), spec.constraints)
        config = HLPowerConfig(sa_table=sa_table)
        regs = bind_registers(schedule)
        ports = assign_ports(schedule.cdfg)
        first = bind_hlpower(schedule, spec.constraints, regs, ports, config)
        second = bind_hlpower(schedule, spec.constraints, regs, ports, config)
        assert [sorted(u.ops) for u in first.fus.units] == [
            sorted(u.ops) for u in second.fus.units
        ]

    def test_alpha_changes_solution(self, sa_table):
        spec = benchmark_spec("wang")
        schedule = list_schedule(load_benchmark("wang"), spec.constraints)
        regs = bind_registers(schedule)
        ports = assign_ports(schedule.cdfg)
        sa_only = bind_hlpower(
            schedule, spec.constraints, regs, ports,
            HLPowerConfig(alpha=1.0, sa_table=sa_table),
        )
        balanced = bind_hlpower(
            schedule, spec.constraints, regs, ports,
            HLPowerConfig(alpha=0.5, sa_table=sa_table),
        )
        assert [sorted(u.ops) for u in sa_only.fus.units] != [
            sorted(u.ops) for u in balanced.fus.units
        ]

    def test_mux_balance_improves_with_muxdiff_term(self, sa_table):
        """Table 4's direction: alpha=0.5 balances muxes at least as
        well as alpha=1 on average."""
        from repro.rtl import mux_report

        means = {}
        for alpha in (1.0, 0.5):
            totals = []
            for name in ("pr", "wang", "honda", "mcm", "dir"):
                spec = benchmark_spec(name)
                schedule = list_schedule(load_benchmark(name), spec.constraints)
                solution = bind_hlpower(
                    schedule,
                    spec.constraints,
                    config=HLPowerConfig(alpha=alpha, sa_table=sa_table),
                )
                totals.append(mux_report(solution).mux_diff_mean)
            means[alpha] = sum(totals) / len(totals)
        assert means[0.5] <= means[1.0] + 1e-9

    def test_multicycle_resources_supported(self, sa_table):
        cdfg = load_benchmark("pr")
        schedule = list_schedule(
            cdfg, {"add": 2, "mult": 2}, latencies={"add": 1, "mult": 2}
        )
        solution = bind_hlpower(
            schedule,
            {"add": 2, "mult": 2},
            config=HLPowerConfig(sa_table=sa_table),
        )
        solution.validate()
