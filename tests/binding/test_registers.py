"""Tests for register binding and port assignment."""

import pytest

from repro.errors import BindingError
from repro.binding import assign_ports, bind_registers
from repro.cdfg import Schedule, compute_lifetimes, figure1_example, load_benchmark, max_overlap
from repro.cdfg.lifetimes import live_variables
from repro.scheduling import list_schedule


def figure1_sched():
    cdfg, start_times = figure1_example()
    return Schedule(cdfg, start_times)


class TestAllocation:
    def test_allocation_equals_lifetime_peak(self):
        schedule = figure1_sched()
        binding = bind_registers(schedule)
        _, peak = max_overlap(compute_lifetimes(schedule))
        assert binding.n_registers == peak

    def test_all_live_variables_bound(self):
        schedule = figure1_sched()
        binding = bind_registers(schedule)
        live = live_variables(compute_lifetimes(schedule))
        for lifetime in live:
            assert lifetime.var_id in binding.assignment

    def test_no_overlapping_variables_share_register(self):
        schedule = figure1_sched()
        binding = bind_registers(schedule)
        lifetimes = compute_lifetimes(schedule)
        for register in range(binding.n_registers):
            items = [
                lifetimes[v] for v in binding.variables_in(register)
            ]
            for i, first in enumerate(items):
                for second in items[i + 1:]:
                    assert not first.overlaps(second)

    @pytest.mark.parametrize("name", ["pr", "wang", "honda"])
    def test_benchmarks_bind_minimally(self, name):
        from repro.cdfg import benchmark_spec

        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        binding = bind_registers(schedule)
        _, peak = max_overlap(compute_lifetimes(schedule))
        assert binding.n_registers == peak
        lifetimes = compute_lifetimes(schedule)
        for register in range(binding.n_registers):
            items = [lifetimes[v] for v in binding.variables_in(register)]
            items.sort(key=lambda lt: lt.birth)
            for first, second in zip(items, items[1:]):
                assert not first.overlaps(second)

    def test_register_of_unbound_raises(self):
        schedule = figure1_sched()
        binding = bind_registers(schedule)
        with pytest.raises(BindingError):
            binding.register_of(99999)

    def test_empty_cdfg(self):
        from repro.cdfg.graph import CDFG

        cdfg = CDFG()
        cdfg.add_input()
        schedule = Schedule(cdfg, {})
        binding = bind_registers(schedule)
        assert binding.n_registers == 0


class TestPortAssignment:
    def test_deterministic_per_seed(self):
        cdfg, _ = figure1_example()
        assert assign_ports(cdfg, seed=4).ports == assign_ports(cdfg, 4).ports

    def test_seed_none_keeps_textual_order(self):
        cdfg, _ = figure1_example()
        ports = assign_ports(cdfg, seed=None)
        for op in cdfg.operations.values():
            assert ports.of(op) == op.inputs

    def test_sub_never_swapped(self):
        from repro.cdfg.graph import CDFG

        cdfg = CDFG()
        a = cdfg.add_input()
        b = cdfg.add_input()
        out = cdfg.add_operation("sub", a, b)
        cdfg.mark_output(out)
        for seed in range(10):
            ports = assign_ports(cdfg, seed=seed)
            assert ports.of(cdfg.operations[0]) == (a, b)

    def test_commutative_ops_sometimes_swapped(self):
        cdfg, _ = figure1_example()
        swapped = False
        for seed in range(10):
            ports = assign_ports(cdfg, seed=seed)
            for op in cdfg.operations.values():
                if ports.of(op) != op.inputs:
                    swapped = True
        assert swapped

    def test_swap_preserves_operand_set(self):
        cdfg, _ = figure1_example()
        ports = assign_ports(cdfg, seed=1)
        for op in cdfg.operations.values():
            assert sorted(ports.of(op)) == sorted(op.inputs)
