"""Tests for the Equation (4) edge weight."""

import pytest

from repro.errors import ConfigError
from repro.binding.weights import DEFAULT_BETA, edge_weight


class TestEquation4:
    def test_alpha_one_is_pure_sa(self):
        assert edge_weight(20.0, 5, "add", alpha=1.0) == pytest.approx(0.05)

    def test_alpha_zero_is_pure_muxdiff(self):
        expected = 1.0 / ((5 + 1) * 30.0)
        assert edge_weight(20.0, 5, "add", alpha=0.0) == pytest.approx(expected)

    def test_alpha_half_mixes_terms(self):
        value = edge_weight(20.0, 1, "add", alpha=0.5)
        expected = 0.5 / 20.0 + 0.5 / (2 * 30.0)
        assert value == pytest.approx(expected)

    def test_muxdiff_zero_valid(self):
        """The (muxDiff + 1) guard makes a perfectly balanced pair legal."""
        value = edge_weight(10.0, 0, "add", alpha=0.0)
        assert value == pytest.approx(1.0 / 30.0)

    def test_beta_per_class(self):
        add = edge_weight(10.0, 2, "add", alpha=0.0)
        mult = edge_weight(10.0, 2, "mult", alpha=0.0)
        assert add / mult == pytest.approx(
            DEFAULT_BETA["mult"] / DEFAULT_BETA["add"]
        )

    def test_custom_beta(self):
        value = edge_weight(10.0, 0, "add", alpha=0.0, beta={"add": 7.0})
        assert value == pytest.approx(1.0 / 7.0)

    def test_lower_sa_means_higher_weight(self):
        better = edge_weight(10.0, 2, "add")
        worse = edge_weight(30.0, 2, "add")
        assert better > worse

    def test_lower_muxdiff_means_higher_weight(self):
        balanced = edge_weight(10.0, 0, "add")
        skewed = edge_weight(10.0, 6, "add")
        assert balanced > skewed


class TestValidation:
    def test_alpha_out_of_range(self):
        with pytest.raises(ConfigError):
            edge_weight(10.0, 0, "add", alpha=1.5)
        with pytest.raises(ConfigError):
            edge_weight(10.0, 0, "add", alpha=-0.1)

    def test_nonpositive_sa_rejected(self):
        with pytest.raises(ConfigError):
            edge_weight(0.0, 0, "add")

    def test_negative_muxdiff_rejected(self):
        with pytest.raises(ConfigError):
            edge_weight(10.0, -1, "add")

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigError):
            edge_weight(10.0, 0, "nand")
