"""Tests for the port-assignment optimization pass."""

import pytest

from repro.binding import (
    HLPowerConfig,
    assign_ports,
    bind_hlpower,
    bind_registers,
    optimize_ports,
)
from repro.cdfg import Schedule, benchmark_spec, figure1_example, load_benchmark
from repro.rtl import mux_report
from repro.scheduling import list_schedule


def bound_benchmark(name, sa_table):
    spec = benchmark_spec(name)
    schedule = list_schedule(load_benchmark(name), spec.constraints)
    return bind_hlpower(
        schedule, spec.constraints, config=HLPowerConfig(sa_table=sa_table)
    )


class TestOptimizePorts:
    def test_never_increases_mux_length(self, sa_table):
        for name in ("pr", "wang", "honda"):
            solution = bound_benchmark(name, sa_table)
            before = mux_report(solution)
            optimized, _ = optimize_ports(solution)
            after = mux_report(optimized)
            assert after.fu_mux_length <= before.fu_mux_length

    def test_typically_improves_something(self, sa_table):
        improved = 0
        for name in ("pr", "wang", "honda", "mcm"):
            solution = bound_benchmark(name, sa_table)
            before = mux_report(solution)
            optimized, flips = optimize_ports(solution)
            after = mux_report(optimized)
            if flips and (
                after.fu_mux_length < before.fu_mux_length
                or after.mux_diff_mean < before.mux_diff_mean
            ):
                improved += 1
        assert improved >= 2

    def test_result_validates(self, sa_table):
        solution = bound_benchmark("pr", sa_table)
        optimized, _ = optimize_ports(solution)
        optimized.validate()
        assert optimized.algorithm.endswith("+portopt")

    def test_original_untouched(self, sa_table):
        solution = bound_benchmark("pr", sa_table)
        original_ports = dict(solution.ports.ports)
        optimize_ports(solution)
        assert solution.ports.ports == original_ports

    def test_operand_sets_preserved(self, sa_table):
        solution = bound_benchmark("wang", sa_table)
        optimized, _ = optimize_ports(solution)
        cdfg = solution.schedule.cdfg
        for op in cdfg.operations.values():
            assert sorted(optimized.ports.of(op)) == sorted(op.inputs)

    def test_sub_never_flipped(self, sa_table):
        from repro.cdfg.graph import CDFG

        cdfg = CDFG()
        a = cdfg.add_input()
        b = cdfg.add_input()
        t1 = cdfg.add_operation("sub", a, b)
        t2 = cdfg.add_operation("sub", t1, b)
        cdfg.mark_output(t2)
        schedule = Schedule(cdfg, {0: 1, 1: 2})
        solution = bind_hlpower(
            schedule, {"add": 1, "mult": 1},
            config=HLPowerConfig(sa_table=sa_table),
        )
        optimized, flips = optimize_ports(solution)
        for op in cdfg.operations.values():
            assert optimized.ports.of(op) == op.inputs
        assert flips == 0

    def test_fixpoint_idempotent(self, sa_table):
        solution = bound_benchmark("pr", sa_table)
        once, _ = optimize_ports(solution)
        twice, flips = optimize_ports(once)
        assert flips == 0

    def test_functional_equivalence_after_flipping(self, sa_table):
        """Flipped ports must not change the computed outputs."""
        import random

        from tests.rtl.test_datapath import golden, replay_control_table
        from repro.rtl import build_datapath

        solution = bound_benchmark("pr", sa_table)
        optimized, flips = optimize_ports(solution)
        assert flips > 0
        datapath = build_datapath(optimized, width=6)
        rng = random.Random(2)
        cdfg = solution.schedule.cdfg
        for _ in range(10):
            pads = [rng.randrange(64) for _ in cdfg.primary_inputs]
            assert replay_control_table(datapath, pads) == golden(
                cdfg, pads, 6
            )
