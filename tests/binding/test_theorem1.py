"""Property test for Theorem 1.

"A weighted bipartite graph G = (U, V, E), containing the single-cycle
operations of a scheduled CDFG, if iteratively generated and solved,
combining matching nodes in each iteration, guarantees that the minimum
possible resource constraints can be met."

We exercise the full HLPower binder on random scheduled CDFGs with the
constraint set to the schedule's densest-step count per class (the
minimum any binding can achieve) and assert the constraint is always
met — for single-cycle libraries, exactly Theorem 1's claim.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.binding import HLPowerConfig, bind_hlpower
from repro.binding.sa_table import SATable, SATableConfig
from repro.cdfg.generate import GraphProfile, generate_cdfg
from repro.errors import CDFGError
from repro.scheduling import list_schedule

_TABLE = SATable(SATableConfig(width=3))


@st.composite
def scheduled_cdfg(draw):
    n_adds = draw(st.integers(3, 20))
    n_mults = draw(st.integers(3, 20))
    n_inputs = draw(st.integers(2, 6))
    n_outputs = draw(st.integers(1, 4))
    profile = GraphProfile("thm1", n_inputs, n_outputs, n_adds, n_mults)
    if n_outputs > profile.n_operations:
        n_outputs = profile.n_operations
    if n_inputs > profile.n_operations + n_outputs:
        n_inputs = profile.n_operations + n_outputs
    profile = GraphProfile("thm1", n_inputs, n_outputs, n_adds, n_mults)
    seed = draw(st.integers(0, 500))
    try:
        cdfg = generate_cdfg(profile, seed=seed)
    except CDFGError:
        # The random generator gives up on a sliver of profile/seed
        # combinations; that is a data-generation infeasibility, not a
        # Theorem 1 counterexample — reject the draw.
        assume(False)
    adders = draw(st.integers(1, 4))
    mults = draw(st.integers(1, 4))
    return list_schedule(cdfg, {"add": adders, "mult": mults})


@settings(max_examples=25, deadline=None)
@given(scheduled_cdfg())
def test_minimum_constraint_always_met(schedule):
    constraints = schedule.min_resources()
    solution = bind_hlpower(
        schedule, constraints, config=HLPowerConfig(sa_table=_TABLE)
    )
    solution.validate()
    assert solution.fus.constraint_met
    allocation = solution.fus.allocation()
    for fu_class, minimum in constraints.items():
        assert allocation[fu_class] == minimum


@settings(max_examples=10, deadline=None)
@given(scheduled_cdfg(), st.integers(1, 3))
def test_relaxed_constraints_also_met(schedule, slack):
    constraints = {
        cls: count + slack for cls, count in schedule.min_resources().items()
    }
    solution = bind_hlpower(
        schedule, constraints, config=HLPowerConfig(sa_table=_TABLE)
    )
    solution.validate()
    assert solution.fus.constraint_met
