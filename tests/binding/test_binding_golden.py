"""Golden regression: the Table 3/4 structural numbers, frozen.

Per benchmark and binder configuration this freezes the binding
metrics the paper's Tables 3 and 4 rest on — total mux length, the
muxDiff sum, and the register count — so engine work (vectorization,
memoization, tie-break changes) cannot silently shift results. The
numbers were recorded from the seed binders; the fast engines must
reproduce them exactly (the differential suite pins fast == reference,
this suite pins the values themselves).

A second concern is tie-break stability: repeated runs of the same
binder on the same inputs must make identical decisions. Both engines
are deterministic by construction (dict insertion order, scipy's
deterministic assignment, networkx's Bland-rule pivots); the repeat
tests turn any future regression into a hard failure instead of a
flaky bench.
"""

import pytest

from repro import BENCHMARK_NAMES, benchmark_spec
from repro.binding import bind_hlpower, bind_lopass
from repro.binding.compile import bind_hlpower_fast, bind_lopass_fast
from repro.binding.hlpower import HLPowerConfig
from repro.cdfg import load_benchmark
from repro.flow.run import prepare_flow_inputs
from repro.rtl.metrics import mux_report
from repro.scheduling import list_schedule

#: benchmark -> config -> (mux_length, muxDiff sum, registers).
#: Regenerate ONLY for a deliberate algorithm change, never to make a
#: red engine PR green.
_GOLDEN = {
    "chem": {
        "lopass": (659, 22, 47),
        "hlpower_a1": (494, 23, 47),
        "hlpower_a05": (578, 6, 47),
    },
    "dir": {
        "lopass": (207, 6, 33),
        "hlpower_a1": (193, 9, 33),
        "hlpower_a05": (199, 6, 33),
    },
    "honda": {
        "lopass": (169, 17, 21),
        "hlpower_a1": (140, 6, 21),
        "hlpower_a05": (148, 3, 21),
    },
    "mcm": {
        "lopass": (141, 10, 18),
        "hlpower_a1": (127, 8, 18),
        "hlpower_a05": (138, 4, 18),
    },
    "pr": {
        "lopass": (78, 5, 13),
        "hlpower_a1": (74, 6, 13),
        "hlpower_a05": (75, 7, 13),
    },
    "steam": {
        "lopass": (410, 20, 29),
        "hlpower_a1": (322, 23, 29),
        "hlpower_a05": (369, 16, 29),
    },
    "wang": {
        "lopass": (89, 6, 13),
        "hlpower_a1": (82, 2, 13),
        "hlpower_a05": (84, 4, 13),
    },
}

#: Tier-1 keeps the fast benchmarks; the rest ride the slow marker.
_SMOKE = ("pr", "wang", "honda", "mcm", "dir")

_ELABORATED = {}


def elaborated(benchmark):
    if benchmark not in _ELABORATED:
        spec = benchmark_spec(benchmark)
        schedule = list_schedule(load_benchmark(benchmark), spec.constraints)
        registers, ports = prepare_flow_inputs(schedule)
        _ELABORATED[benchmark] = (
            schedule, spec.constraints, registers, ports
        )
    return _ELABORATED[benchmark]


def run_config(benchmark, config, sa_table, engine="fast"):
    schedule, limits, registers, ports = elaborated(benchmark)
    if config == "lopass":
        binder = bind_lopass_fast if engine == "fast" else bind_lopass
        return binder(schedule, limits, registers, ports)
    alpha = {"hlpower_a1": 1.0, "hlpower_a05": 0.5}[config]
    hl_cfg = HLPowerConfig(alpha=alpha, sa_table=sa_table)
    binder = bind_hlpower_fast if engine == "fast" else bind_hlpower
    return binder(schedule, limits, registers, ports, hl_cfg)


def golden_of(solution):
    report = mux_report(solution)
    return (
        report.mux_length,
        sum(report.mux_diffs),
        solution.registers.n_registers,
    )


class TestGolden:
    @pytest.mark.parametrize("bench_name", _SMOKE)
    @pytest.mark.parametrize("config", sorted(_GOLDEN["pr"]))
    def test_fast_engine(self, bench_name, config, sa_table):
        solution = run_config(bench_name, config, sa_table)
        assert golden_of(solution) == _GOLDEN[bench_name][config]

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "bench_name", sorted(set(BENCHMARK_NAMES) - set(_SMOKE))
    )
    @pytest.mark.parametrize("config", sorted(_GOLDEN["pr"]))
    def test_fast_engine_large(self, bench_name, config, sa_table):
        solution = run_config(bench_name, config, sa_table)
        assert golden_of(solution) == _GOLDEN[bench_name][config]

    @pytest.mark.slow
    @pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
    @pytest.mark.parametrize("config", sorted(_GOLDEN["pr"]))
    def test_reference_engine(self, bench_name, config, sa_table):
        solution = run_config(bench_name, config, sa_table, "reference")
        assert golden_of(solution) == _GOLDEN[bench_name][config]


class TestTieBreakStability:
    """Same inputs, repeated runs, identical decisions — both engines."""

    @pytest.mark.parametrize("config", sorted(_GOLDEN["pr"]))
    @pytest.mark.parametrize("engine", ("fast", "reference"))
    def test_repeat_runs_identical(self, config, engine, sa_table):
        first = run_config("wang", config, sa_table, engine)
        second = run_config("wang", config, sa_table, engine)
        assert [
            (unit.fu_id, unit.fu_class, unit.ops)
            for unit in first.fus.units
        ] == [
            (unit.fu_id, unit.fu_class, unit.ops)
            for unit in second.fus.units
        ]
