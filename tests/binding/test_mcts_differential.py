"""Differential bounds: heuristics >= MCTS >= exact, instance by instance.

The MCTS binder's contract is a sandwich on the branch-and-bound
objective (total FU mux inputs):

* **never worse than the best heuristic** — the search starts from the
  better of HLPower/LOPASS as its incumbent and only replaces it with
  strictly better completions, so ``mcts <= min(hlpower, lopass)``
  must hold on *every* instance, not just on average;
* **never better than the oracle** — ``mcts >= optimal`` on every
  oracle-feasible instance; a violation would mean the search's cheap
  bitset costing disagrees with :func:`~repro.rtl.metrics.mux_report`
  (exactly the kind of bug a gap-closed average would hide).

Tier-1 runs a 3-instance smoke; the full 62-instance oracle-feasible
slice rides the ``slow`` marker (the nightly CI job runs it). A third
check pins engine-independence: the "reference" incumbents are
decision-identical to the "fast" ones, so the search must return the
same solution either way.
"""

import pytest

from repro.binding import bind_optimal
from repro.binding.compile import bind_hlpower_fast, bind_lopass_fast
from repro.binding.mcts import MCTSConfig, bind_mcts
from repro.cdfg import load_benchmark
from repro.cdfg.corpus import (
    classic_corpus_names,
    corpus_instances,
    oracle_feasible,
)
from repro.flow.run import prepare_flow_inputs
from repro.rtl.metrics import mux_report
from repro.scheduling import list_schedule

_ELABORATED = {}


def oracle_slice():
    classic = set(classic_corpus_names())
    return [
        instance for instance in corpus_instances()
        if instance.name in classic and oracle_feasible(instance)
    ]


def elaborated(instance):
    if instance.name not in _ELABORATED:
        schedule = list_schedule(
            load_benchmark(instance.name), instance.constraints
        )
        registers, ports = prepare_flow_inputs(schedule)
        _ELABORATED[instance.name] = (
            schedule, instance.constraints, registers, ports
        )
    return _ELABORATED[instance.name]


def check_sandwich(instance):
    schedule, limits, registers, ports = elaborated(instance)
    hlpower = bind_hlpower_fast(schedule, limits, registers, ports)
    lopass = bind_lopass_fast(schedule, limits, registers, ports)
    mcts = bind_mcts(schedule, limits, registers, ports, MCTSConfig())
    optimal = bind_optimal(schedule, limits, registers, ports)
    lengths = {
        name: mux_report(solution).fu_mux_length
        for name, solution in (
            ("hlpower", hlpower), ("lopass", lopass),
            ("mcts", mcts), ("optimal", optimal),
        )
    }
    best_heuristic = min(lengths["hlpower"], lengths["lopass"])
    assert lengths["mcts"] <= best_heuristic, (instance.name, lengths)
    assert lengths["mcts"] >= lengths["optimal"], (instance.name, lengths)
    return lengths


_SMOKE_COUNT = 3


@pytest.mark.parametrize(
    "instance", oracle_slice()[:_SMOKE_COUNT], ids=lambda i: i.name
)
def test_sandwich_smoke(instance):
    check_sandwich(instance)


@pytest.mark.slow
@pytest.mark.parametrize(
    "instance", oracle_slice()[_SMOKE_COUNT:], ids=lambda i: i.name
)
def test_sandwich_full_slice(instance):
    check_sandwich(instance)


@pytest.mark.slow
def test_default_budget_closes_gap_somewhere():
    # The acceptance bar: at the default budget the search strictly
    # improves on the better heuristic for a measurable subset of the
    # oracle-feasible slice (bench_mcts.py records the exact counts).
    improved = 0
    for instance in oracle_slice():
        lengths = check_sandwich(instance)
        if lengths["mcts"] < min(lengths["hlpower"], lengths["lopass"]):
            improved += 1
    assert improved > 0


@pytest.mark.parametrize("instance", oracle_slice()[:2],
                         ids=lambda i: i.name)
def test_engine_independent(instance):
    # The fast incumbents are decision-identical to the reference
    # binders, so the search sees the same starting point and the same
    # RNG stream — the solutions must match unit for unit.
    schedule, limits, registers, ports = elaborated(instance)
    fast = bind_mcts(schedule, limits, registers, ports,
                     MCTSConfig(engine="fast"))
    reference = bind_mcts(schedule, limits, registers, ports,
                          MCTSConfig(engine="reference"))
    assert [
        (unit.fu_id, unit.fu_class, unit.ops) for unit in fast.fus.units
    ] == [
        (unit.fu_id, unit.fu_class, unit.ops)
        for unit in reference.fus.units
    ]
