"""Tests for the exact binder (quality oracle) and left-edge registers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BindingError
from repro.binding import (
    HLPowerConfig,
    assign_ports,
    bind_hlpower,
    bind_lopass,
    bind_registers,
)
from repro.binding.leftedge import bind_registers_left_edge
from repro.binding.optimal import bind_optimal
from repro.binding.sa_table import SATable, SATableConfig
from repro.cdfg import (
    Schedule,
    compute_lifetimes,
    figure1_example,
    max_overlap,
)
from repro.cdfg.generate import GraphProfile, generate_cdfg
from repro.rtl import mux_report
from repro.scheduling import list_schedule

_TABLE = SATable(SATableConfig(width=3))


def figure1_sched():
    cdfg, start_times = figure1_example()
    return Schedule(cdfg, start_times)


class TestOptimalBinder:
    def test_figure1_valid_and_minimal(self):
        schedule = figure1_sched()
        solution = bind_optimal(schedule, {"add": 2, "mult": 1})
        solution.validate()
        assert solution.fus.allocation() == {"add": 2, "mult": 1}
        assert solution.algorithm == "optimal"

    def test_oracle_never_worse_than_heuristics(self):
        """The exact binder's mux length lower-bounds both heuristics
        on the same registers/ports."""
        schedule = figure1_sched()
        registers = bind_registers(schedule)
        ports = assign_ports(schedule.cdfg)
        constraints = {"add": 2, "mult": 1}
        optimal = bind_optimal(schedule, constraints, registers, ports)
        heuristic = bind_hlpower(
            schedule, constraints, registers, ports,
            HLPowerConfig(sa_table=_TABLE),
        )
        baseline = bind_lopass(schedule, constraints, registers, ports)
        opt_len = mux_report(optimal).fu_mux_length
        assert opt_len <= mux_report(heuristic).fu_mux_length
        assert opt_len <= mux_report(baseline).fu_mux_length

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 200))
    def test_oracle_bound_on_random_small_graphs(self, seed):
        profile = GraphProfile("opt", 3, 2, 6, 4)
        cdfg = generate_cdfg(profile, seed=seed)
        schedule = list_schedule(cdfg, {"add": 2, "mult": 2})
        constraints = schedule.min_resources()
        registers = bind_registers(schedule)
        ports = assign_ports(cdfg)
        optimal = bind_optimal(schedule, constraints, registers, ports)
        heuristic = bind_hlpower(
            schedule, constraints, registers, ports,
            HLPowerConfig(sa_table=_TABLE),
        )
        assert (
            mux_report(optimal).fu_mux_length
            <= mux_report(heuristic).fu_mux_length
        )

    def test_size_limit_enforced(self):
        from repro.cdfg import benchmark_spec, load_benchmark

        spec = benchmark_spec("pr")
        schedule = list_schedule(load_benchmark("pr"), spec.constraints)
        with pytest.raises(BindingError):
            bind_optimal(schedule, spec.constraints)

    def test_hlpower_near_optimal_on_figure1(self):
        """On the paper's own example the heuristic should be at or
        near the exact optimum."""
        schedule = figure1_sched()
        registers = bind_registers(schedule)
        ports = assign_ports(schedule.cdfg)
        constraints = {"add": 2, "mult": 1}
        optimal = mux_report(
            bind_optimal(schedule, constraints, registers, ports)
        ).fu_mux_length
        heuristic = mux_report(
            bind_hlpower(
                schedule, constraints, registers, ports,
                HLPowerConfig(sa_table=_TABLE),
            )
        ).fu_mux_length
        assert heuristic <= optimal + 3


class TestLeftEdge:
    def test_minimum_register_count(self):
        schedule = figure1_sched()
        binding = bind_registers_left_edge(schedule)
        _, peak = max_overlap(compute_lifetimes(schedule))
        assert binding.n_registers == peak

    def test_no_conflicts(self):
        schedule = figure1_sched()
        binding = bind_registers_left_edge(schedule)
        lifetimes = compute_lifetimes(schedule)
        for register in range(binding.n_registers):
            items = [lifetimes[v] for v in binding.variables_in(register)]
            for i, first in enumerate(items):
                for second in items[i + 1:]:
                    assert not first.overlaps(second)

    def test_same_count_as_bipartite_binder(self):
        from repro.cdfg import benchmark_spec, load_benchmark

        for name in ("pr", "wang", "honda"):
            spec = benchmark_spec(name)
            schedule = list_schedule(load_benchmark(name), spec.constraints)
            left_edge = bind_registers_left_edge(schedule)
            bipartite = bind_registers(schedule)
            assert left_edge.n_registers == bipartite.n_registers

    def test_affinity_binder_not_worse_on_muxes(self):
        """The paper-style affinity-weighted binder should produce mux
        lengths no worse than plain left-edge on average."""
        from repro.cdfg import benchmark_spec, load_benchmark

        totals = {"affinity": 0, "leftedge": 0}
        for name in ("pr", "wang", "honda"):
            spec = benchmark_spec(name)
            schedule = list_schedule(load_benchmark(name), spec.constraints)
            ports = assign_ports(schedule.cdfg)
            for label, binder in (
                ("affinity", bind_registers),
                ("leftedge", bind_registers_left_edge),
            ):
                registers = binder(schedule)
                solution = bind_lopass(
                    schedule, spec.constraints, registers, ports
                )
                totals[label] += mux_report(solution).mux_length
        assert totals["affinity"] <= totals["leftedge"] * 1.1

    def test_feeds_full_binding(self):
        schedule = figure1_sched()
        registers = bind_registers_left_edge(schedule)
        solution = bind_hlpower(
            schedule, {"add": 2, "mult": 1}, registers,
            config=HLPowerConfig(sa_table=_TABLE),
        )
        solution.validate()
