"""Tests for binding-node compatibility and U/V selection."""

import pytest

from repro.errors import BindingError
from repro.binding.compat import BindingNode, select_initial_sets
from repro.cdfg import Schedule, figure1_example


def figure1_sched():
    cdfg, start_times = figure1_example()
    return Schedule(cdfg, start_times)


class TestBindingNode:
    def test_singleton(self):
        schedule = figure1_sched()
        op = schedule.cdfg.operations[0]
        node = BindingNode.singleton(schedule, op)
        assert node.ops == frozenset((0,))
        assert node.busy == frozenset((1,))
        assert node.fu_class == "add"

    def test_compatibility_requires_same_class(self):
        schedule = figure1_sched()
        add_node = BindingNode.singleton(schedule, schedule.cdfg.operations[0])
        mult_node = BindingNode.singleton(schedule, schedule.cdfg.operations[2])
        assert not add_node.compatible(mult_node)

    def test_compatibility_requires_disjoint_steps(self):
        schedule = figure1_sched()
        op1 = schedule.cdfg.operations[0]  # add, step 1
        op2 = schedule.cdfg.operations[1]  # add, step 1
        op4 = schedule.cdfg.operations[3]  # add, step 2
        n1 = BindingNode.singleton(schedule, op1)
        n2 = BindingNode.singleton(schedule, op2)
        n4 = BindingNode.singleton(schedule, op4)
        assert not n1.compatible(n2)
        assert n1.compatible(n4)

    def test_merge_unions_ops_and_busy(self):
        schedule = figure1_sched()
        n1 = BindingNode.singleton(schedule, schedule.cdfg.operations[0])
        n4 = BindingNode.singleton(schedule, schedule.cdfg.operations[3])
        merged = n1.merge(n4)
        assert merged.ops == frozenset((0, 3))
        assert merged.busy == frozenset((1, 2))
        assert len(merged) == 2

    def test_merge_incompatible_raises(self):
        schedule = figure1_sched()
        n1 = BindingNode.singleton(schedule, schedule.cdfg.operations[0])
        n2 = BindingNode.singleton(schedule, schedule.cdfg.operations[1])
        with pytest.raises(BindingError):
            n1.merge(n2)

    def test_merged_node_compatibility_transfers(self):
        schedule = figure1_sched()
        n1 = BindingNode.singleton(schedule, schedule.cdfg.operations[0])
        n4 = BindingNode.singleton(schedule, schedule.cdfg.operations[3])
        n8 = BindingNode.singleton(schedule, schedule.cdfg.operations[7])
        merged = n1.merge(n4)
        assert merged.compatible(n8)
        final = merged.merge(n8)
        assert final.busy == frozenset((1, 2, 3))


class TestInitialSets:
    def test_figure1_add_selection(self):
        """Step 1 has two adds — the densest add step — so |U| = 2."""
        schedule = figure1_sched()
        u_nodes, v_nodes = select_initial_sets(schedule, "add")
        assert len(u_nodes) == 2
        assert len(v_nodes) == 3
        u_ops = {op for node in u_nodes for op in node.ops}
        assert u_ops == {0, 1}  # ops 1 and 2 in paper numbering

    def test_figure1_mult_selection(self):
        schedule = figure1_sched()
        u_nodes, v_nodes = select_initial_sets(schedule, "mult")
        assert len(u_nodes) == 1
        assert len(v_nodes) == 2

    def test_u_size_is_densest_count(self):
        schedule = figure1_sched()
        for fu_class in ("add", "mult"):
            u_nodes, _ = select_initial_sets(schedule, fu_class)
            _, count = schedule.densest_step(fu_class)
            assert len(u_nodes) == count

    def test_missing_class_gives_empty_sets(self):
        schedule = figure1_sched()
        # The figure has no pure-sub class beyond "add"; query a class
        # with no operations via an empty-step schedule instead.
        from repro.cdfg.graph import CDFG

        cdfg = CDFG()
        cdfg.add_input()
        empty = Schedule(cdfg, {})
        assert select_initial_sets(empty, "mult") == ([], [])

    def test_all_ops_partitioned(self):
        schedule = figure1_sched()
        u_nodes, v_nodes = select_initial_sets(schedule, "add")
        all_ops = {op for node in u_nodes + v_nodes for op in node.ops}
        expected = {
            op.op_id
            for op in schedule.cdfg.operations.values()
            if op.resource_class == "add"
        }
        assert all_ops == expected
