"""Tests for binding result types and solution validation."""

import pytest

from repro.errors import BindingError
from repro.binding.base import (
    BindingSolution,
    FUBinding,
    FunctionalUnit,
    PortAssignment,
    RegisterBinding,
)
from repro.cdfg.graph import CDFG
from repro.cdfg.schedule import Schedule


def tiny_solution():
    """Two adds in different steps sharing one FU and two registers."""
    cdfg = CDFG()
    a = cdfg.add_input("a")
    b = cdfg.add_input("b")
    t1 = cdfg.add_operation("add", a, b)
    t2 = cdfg.add_operation("add", t1, a)
    cdfg.mark_output(t2)
    schedule = Schedule(cdfg, {0: 1, 1: 2})
    registers = RegisterBinding(
        3, {a: 0, b: 1, t1: 1, t2: 2}
    )
    ports = PortAssignment({0: (a, b), 1: (t1, a)})
    units = [FunctionalUnit(0, "add", frozenset((0, 1)))]
    return BindingSolution(
        schedule, registers, ports, FUBinding(units)
    ), (a, b, t1, t2)


class TestQueries:
    def test_port_sources(self):
        solution, (a, b, t1, t2) = tiny_solution()
        unit = solution.fus.units[0]
        sources_a, sources_b = solution.port_sources(unit)
        # op0 port A reads reg(a)=0; op1 port A reads reg(t1)=1.
        assert sources_a == [0, 1]
        # op0 port B reads reg(b)=1; op1 port B reads reg(a)=0.
        assert sources_b == [1, 0]
        assert solution.mux_sizes(unit) == (2, 2)

    def test_register_sources(self):
        solution, (a, b, t1, t2) = tiny_solution()
        # Register 1 holds b (pad) and t1 (written by FU 0).
        assert solution.register_sources(1) == [-1, 0]
        # Register 2 holds only t2 (FU 0).
        assert solution.register_sources(2) == [0]

    def test_unit_of(self):
        solution, _ = tiny_solution()
        assert solution.fus.unit_of(0).fu_id == 0
        with pytest.raises(BindingError):
            solution.fus.unit_of(42)

    def test_units_of_class_and_allocation(self):
        solution, _ = tiny_solution()
        assert len(solution.fus.units_of_class("add")) == 1
        assert solution.fus.units_of_class("mult") == []
        assert solution.fus.allocation() == {"add": 1}


class TestValidation:
    def test_valid_solution_passes(self):
        solution, _ = tiny_solution()
        solution.validate()

    def test_wrong_class_rejected(self):
        solution, _ = tiny_solution()
        solution.fus.units[0] = FunctionalUnit(
            0, "mult", solution.fus.units[0].ops
        )
        with pytest.raises(BindingError):
            solution.validate()

    def test_unbound_operation_rejected(self):
        solution, _ = tiny_solution()
        solution.fus.units[0] = FunctionalUnit(0, "add", frozenset((0,)))
        with pytest.raises(BindingError):
            solution.validate()

    def test_double_binding_rejected(self):
        solution, _ = tiny_solution()
        solution.fus.units.append(
            FunctionalUnit(1, "add", frozenset((1,)))
        )
        with pytest.raises(BindingError):
            solution.validate()

    def test_overlapping_ops_on_one_unit_rejected(self):
        cdfg = CDFG()
        a = cdfg.add_input("a")
        t1 = cdfg.add_operation("add", a, a)
        t2 = cdfg.add_operation("add", a, a)
        cdfg.mark_output(t1)
        cdfg.mark_output(t2)
        schedule = Schedule(cdfg, {0: 1, 1: 1})  # same step!
        registers = RegisterBinding(3, {a: 0, t1: 1, t2: 2})
        ports = PortAssignment({})
        units = [FunctionalUnit(0, "add", frozenset((0, 1)))]
        solution = BindingSolution(
            schedule, registers, ports, FUBinding(units)
        )
        with pytest.raises(BindingError):
            solution.validate()

    def test_register_lifetime_conflict_rejected(self):
        solution, (a, b, t1, t2) = tiny_solution()
        # Put a (alive steps 1-2) and t1 (written step 1, read step 2)
        # in the same register: conflict.
        solution.registers.assignment[t1] = 0
        with pytest.raises(BindingError):
            solution.validate()

    def test_port_default_falls_back_to_inputs(self):
        solution, _ = tiny_solution()
        op = solution.schedule.cdfg.operations[0]
        empty_ports = PortAssignment({})
        assert empty_ports.of(op) == op.inputs

    def test_variables_in(self):
        solution, (a, b, t1, t2) = tiny_solution()
        assert solution.registers.variables_in(1) == sorted((b, t1))
