"""Property tests: matching solvers and the corpus generator.

Three invariant families back the binding engine work:

* the scipy-backed :func:`max_weight_matching` and the pure-Python
  Hungarian oracle :func:`max_weight_matching_python` must agree on
  the *value* of every random weighted bipartite graph (the matchings
  themselves may differ between optimal ties) while both emitting only
  real edges, at most one partner per node, and rejecting non-positive
  weights;
* the vectorized network simplex behind the fast LOPASS engine must
  compute the *same flow* (not just the same cost) as networkx's
  ``min_cost_flow`` on arbitrary random graphs — the pivot-for-pivot
  fidelity the chain extraction depends on;
* the corpus generator must be deterministic per seed, emit acyclic
  graphs, and honor its profile's counts (the properties every sweep
  over ``repro.cdfg.corpus`` instances silently relies on).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BindingError
from repro.binding.matching import (
    matching_weight,
    max_weight_matching,
    max_weight_matching_python,
)
from repro.cdfg.corpus import CORPUS_FAMILIES, corpus_instances
from repro.cdfg.generate import generate_cdfg


# ---------------------------------------------------------------------------
# Random weighted bipartite graphs.
# ---------------------------------------------------------------------------


@st.composite
def bipartite_graphs(draw):
    """(left, right, weights) with strictly positive float weights."""
    n_left = draw(st.integers(min_value=1, max_value=7))
    n_right = draw(st.integers(min_value=1, max_value=7))
    left = [f"u{i}" for i in range(n_left)]
    right = [f"v{j}" for j in range(n_right)]
    pairs = [(u, v) for u in left for v in right]
    edges = draw(
        st.lists(
            st.sampled_from(pairs),
            unique=True,
            max_size=len(pairs),
        )
    )
    weights = {}
    for edge in edges:
        weights[edge] = draw(
            st.floats(
                min_value=0.001,
                max_value=100.0,
                allow_nan=False,
                allow_infinity=False,
            )
        )
    return left, right, weights


class TestMatchingAgainstOracle:
    @settings(max_examples=150, deadline=None)
    @given(bipartite_graphs())
    def test_equal_total_weight(self, graph):
        left, right, weights = graph
        scipy_matching = max_weight_matching(left, right, weights)
        python_matching = max_weight_matching_python(left, right, weights)
        assert matching_weight(scipy_matching, weights) == pytest.approx(
            matching_weight(python_matching, weights), rel=1e-9, abs=1e-9
        )

    @settings(max_examples=150, deadline=None)
    @given(bipartite_graphs())
    def test_only_real_edges(self, graph):
        left, right, weights = graph
        for solver in (max_weight_matching, max_weight_matching_python):
            for u, v in solver(left, right, weights).items():
                assert (u, v) in weights

    @settings(max_examples=150, deadline=None)
    @given(bipartite_graphs())
    def test_no_duplicate_right_nodes(self, graph):
        left, right, weights = graph
        for solver in (max_weight_matching, max_weight_matching_python):
            matching = solver(left, right, weights)
            matched_right = list(matching.values())
            assert len(matched_right) == len(set(matched_right))
            assert set(matching) <= set(left)
            assert set(matched_right) <= set(right)

    @settings(max_examples=60, deadline=None)
    @given(
        bipartite_graphs(),
        st.sampled_from([0.0, -1.0, -0.5]),
    )
    def test_non_positive_weight_rejected(self, graph, bad_weight):
        left, right, weights = graph
        weights = dict(weights)
        weights[(left[0], right[0])] = bad_weight
        for solver in (max_weight_matching, max_weight_matching_python):
            with pytest.raises(BindingError):
                solver(left, right, weights)


# ---------------------------------------------------------------------------
# The vectorized network simplex vs networkx, on arbitrary graphs.
# ---------------------------------------------------------------------------


@st.composite
def flow_problems(draw):
    """(n, edges, demands) with finite capacities and zero-sum demands."""
    n = draw(st.integers(min_value=2, max_value=6))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(pairs), unique=True, min_size=1,
                 max_size=len(pairs))
    )
    attrs = [
        (
            draw(st.integers(min_value=1, max_value=5)),   # capacity
            draw(st.integers(min_value=-3, max_value=6)),  # weight
        )
        for _ in edges
    ]
    demands = [
        draw(st.integers(min_value=-3, max_value=3)) for _ in range(n - 1)
    ]
    demands.append(-sum(demands))
    return n, list(zip(edges, attrs)), demands


class TestNetworkSimplexAgainstNetworkx:
    @settings(max_examples=120, deadline=None)
    @given(flow_problems())
    def test_same_flow_as_networkx(self, problem):
        import networkx as nx
        import numpy as np

        from repro.binding.compile import _network_simplex
        from repro.errors import BindingError

        n, edges, demands = problem
        graph = nx.DiGraph()
        for node in range(n):
            graph.add_node(node, demand=demands[node])
        for (u, v), (capacity, weight) in edges:
            graph.add_edge(u, v, capacity=capacity, weight=weight)
        # Present edges to the fast solver in networkx's own iteration
        # order, exactly as the LOPASS engine builds its arrays.
        ordered = list(graph.edges(data=True))
        srcs = np.array([e[0] for e in ordered], dtype=np.int64)
        tgts = np.array([e[1] for e in ordered], dtype=np.int64)
        caps = np.array([e[2]["capacity"] for e in ordered], dtype=np.int64)
        weights = np.array([e[2]["weight"] for e in ordered], dtype=np.int64)
        demand_arr = np.array(demands, dtype=np.int64)

        try:
            flow_dict = nx.min_cost_flow(graph)
        except nx.NetworkXUnfeasible:
            with pytest.raises(BindingError):
                _network_simplex(demand_arr, srcs, tgts, caps, weights)
            return
        flow = _network_simplex(demand_arr, srcs, tgts, caps, weights)
        for index, (u, v, _) in enumerate(ordered):
            assert flow[index] == flow_dict[u][v], (u, v)


# ---------------------------------------------------------------------------
# Corpus-generator invariants.
# ---------------------------------------------------------------------------


@st.composite
def corpus_picks(draw):
    """One shipped corpus instance (drawn from the full registry)."""
    instances = corpus_instances()
    return instances[draw(st.integers(0, len(instances) - 1))]


def assert_dag(cdfg):
    """Operand variables are always produced by earlier operations."""
    produced_by = {}
    for op_id in sorted(cdfg.operations):
        op = cdfg.operations[op_id]
        for var in op.inputs:
            producer = cdfg.variables[var].producer
            if producer is not None:
                assert producer in produced_by, (
                    f"op {op_id} reads variable {var} produced by the "
                    f"later (or same) operation {producer}"
                )
        produced_by[op_id] = op.output


def graph_signature(cdfg):
    return (
        sorted(cdfg.primary_inputs),
        sorted(cdfg.primary_outputs),
        sorted(
            (op.op_id, op.op_type, op.inputs, op.output)
            for op in cdfg.operations.values()
        ),
    )


class TestCorpusGenerator:
    @settings(max_examples=40, deadline=None)
    @given(corpus_picks())
    def test_deterministic_per_seed(self, instance):
        first = generate_cdfg(instance.profile, instance.seed)
        second = generate_cdfg(instance.profile, instance.seed)
        assert graph_signature(first) == graph_signature(second)

    @settings(max_examples=40, deadline=None)
    @given(corpus_picks())
    def test_dag_and_validates(self, instance):
        cdfg = generate_cdfg(instance.profile, instance.seed)
        cdfg.validate()
        assert_dag(cdfg)

    @settings(max_examples=40, deadline=None)
    @given(corpus_picks())
    def test_profile_counts_honored(self, instance):
        profile = instance.profile
        cdfg = generate_cdfg(profile, instance.seed)
        ops = list(cdfg.operations.values())
        assert len(cdfg.primary_inputs) == profile.n_inputs
        assert len(cdfg.primary_outputs) == profile.n_outputs
        assert sum(op.op_type == "add" for op in ops) == profile.n_adds
        assert sum(op.op_type == "mult" for op in ops) == profile.n_mults

    def test_registry_is_consistent(self):
        instances = corpus_instances()
        assert len(instances) == sum(
            family.size() for family in CORPUS_FAMILIES.values()
        )
        assert len({inst.name for inst in instances}) == len(instances)
        # Every family appears, and names parse back to their family.
        for instance in instances:
            assert instance.family in CORPUS_FAMILIES
            assert instance.name.startswith(instance.family + "-")

    def test_round_robin_limit_samples_every_family(self):
        picked = corpus_instances(limit=len(CORPUS_FAMILIES))
        assert {inst.family for inst in picked} == set(CORPUS_FAMILIES)


class TestScalingFamilies:
    """The huge/soc families and the >=1000-instance registry."""

    def test_registry_reaches_sweep_scale(self):
        assert len(corpus_instances()) >= 1000

    def test_classic_corpus_is_unchanged(self):
        from repro.cdfg.corpus import CLASSIC_SEEDS, classic_corpus_names

        classic = classic_corpus_names()
        assert len(classic) == 90
        assert set(CLASSIC_SEEDS) == {"micro", "kernel", "wide"}

    def test_scaling_families_registered(self):
        assert "huge" in CORPUS_FAMILIES
        assert "soc" in CORPUS_FAMILIES
        ops = [
            inst.n_ops for inst in corpus_instances(families=("soc",))
        ]
        assert max(ops) >= 4096

    def test_every_scaling_profile_derives(self):
        # Profile derivation (not generation) for every huge/soc point;
        # the registry build would have raised otherwise, so this pins
        # the constraints convention instead.
        for inst in corpus_instances(families=("huge", "soc")):
            assert inst.constraints["add"] >= 1
            assert inst.constraints["mult"] >= 1
            assert inst.profile.n_adds + inst.profile.n_mults == inst.n_ops

    def test_huge_instance_generates(self):
        from repro.cdfg import load_benchmark

        instance = corpus_instances(families=("huge",))[0]
        cdfg = load_benchmark(instance.name)
        cdfg.validate()
        assert len(cdfg.operations) == instance.n_ops
