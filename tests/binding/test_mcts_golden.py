"""Golden regression: the MCTS binder's numbers and cache keys, frozen.

Two things are pinned per paper benchmark at the default budget/seed:

* the structural result — total mux length, muxDiff sum, register
  count — so search-policy work (UCT constants, playout ordering, RNG
  stream layout) cannot silently shift solutions;
* the bind stage's content fingerprint with ``binder="mcts"``, so
  cache-key drift is caught: the budget and seed enter the digest, and
  any change to the token shape would silently orphan (or worse,
  alias) persisted artifacts.

Regenerate ONLY for a deliberate algorithm change, never to make a
red PR green.
"""

import pytest

from repro import benchmark_spec
from repro.binding import DEFAULT_MCTS_BUDGET, DEFAULT_MCTS_SEED
from repro.binding.mcts import MCTSConfig, bind_mcts
from repro.cdfg import load_benchmark
from repro.flow.run import FlowConfig, build_pipeline, prepare_flow_inputs
from repro.rtl.metrics import mux_report
from repro.scheduling import list_schedule

#: benchmark -> (mux_length, muxDiff sum, registers, bind fingerprint)
#: at the default budget/seed.
_GOLDEN = {
    "chem": (487, 10, 47,
             "0d477d64dfce745150fb3e89880ff1fc73035679906d8af739c691193054b07e"),
    "dir": (184, 7, 33,
            "6eae844ad50f6ec6d220194fe7a123b00ff17761d855717ba5fc3a13f394c928"),
    "honda": (132, 5, 21,
              "df1f464683cd70d3bf1c4d87a4e6dfe435c8c2709c1800ce1b0e4fca0aecbbca"),
    "mcm": (115, 12, 18,
            "09bcc911eee9dc160981a081c676e886405a1d9c6800a95ac4c7ed619bac0d4e"),
    "pr": (67, 3, 13,
           "d95a43e21731cdfd2dc1027d351716d4c23f8d99232f7785757e2861836387fd"),
    "steam": (319, 14, 29,
              "e3f0ef2572bc2a2905375f866525bc41f4ff777da57c98f6fe0ee852be8b7718"),
    "wang": (74, 2, 13,
             "401400b104715e036a1809ff1181fc6d72eb1a39aaf7b65d4b78203ea4be9291"),
}

#: Tier-1 keeps the fast benchmarks; the rest ride the slow marker.
_SMOKE = ("pr", "wang", "honda", "mcm")

_ELABORATED = {}


def elaborated(benchmark):
    if benchmark not in _ELABORATED:
        spec = benchmark_spec(benchmark)
        schedule = list_schedule(load_benchmark(benchmark), spec.constraints)
        registers, ports = prepare_flow_inputs(schedule)
        _ELABORATED[benchmark] = (
            schedule, spec.constraints, registers, ports
        )
    return _ELABORATED[benchmark]


def golden_of(benchmark):
    schedule, limits, registers, ports = elaborated(benchmark)
    solution = bind_mcts(schedule, limits, registers, ports, MCTSConfig())
    report = mux_report(solution)
    pipeline = build_pipeline(schedule, limits, "mcts", FlowConfig(),
                              registers, ports)
    return (
        report.mux_length,
        sum(report.mux_diffs),
        solution.registers.n_registers,
        pipeline.stage_fingerprint("bind"),
    )


def test_defaults_match_frozen_knobs():
    # The golden values were recorded at these settings; changing a
    # default silently invalidates the whole table.
    cfg = MCTSConfig()
    assert (cfg.budget, cfg.seed) == (256, 1)
    assert (DEFAULT_MCTS_BUDGET, DEFAULT_MCTS_SEED) == (256, 1)
    flow = FlowConfig()
    assert (flow.mcts_budget, flow.mcts_seed) == (256, 1)


@pytest.mark.parametrize("bench_name", _SMOKE)
def test_golden(bench_name):
    assert golden_of(bench_name) == _GOLDEN[bench_name]


@pytest.mark.slow
@pytest.mark.parametrize(
    "bench_name", sorted(set(_GOLDEN) - set(_SMOKE))
)
def test_golden_large(bench_name):
    assert golden_of(bench_name) == _GOLDEN[bench_name]


def test_budget_and_seed_enter_bind_fingerprint():
    schedule, limits, registers, ports = elaborated("pr")

    def fp(**kwargs):
        pipeline = build_pipeline(schedule, limits, "mcts",
                                  FlowConfig(**kwargs), registers, ports)
        return pipeline.stage_fingerprint("bind")

    base = fp()
    assert base == _GOLDEN["pr"][3]
    assert fp(mcts_budget=128) != base
    assert fp(mcts_seed=2) != base
    # The other binders' tokens must not absorb the mcts knobs: an
    # hlpower artifact is reusable across any mcts budget.
    hl = build_pipeline(schedule, limits, "hlpower", FlowConfig(),
                        registers, ports)
    hl_other = build_pipeline(
        schedule, limits, "hlpower", FlowConfig(mcts_budget=128),
        registers, ports,
    )
    assert hl.stage_fingerprint("bind") == hl_other.stage_fingerprint("bind")
