"""Tests for max-weight bipartite matching (scipy + pure-Python oracle)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BindingError
from repro.binding.matching import (
    matching_weight,
    max_weight_matching,
    max_weight_matching_python,
)


class TestBasics:
    def test_single_edge(self):
        result = max_weight_matching(["u"], ["v"], {("u", "v"): 1.0})
        assert result == {"u": "v"}

    def test_empty_graph(self):
        assert max_weight_matching(["u"], ["v"], {}) == {}

    def test_prefers_heavier_edge(self):
        weights = {("u", "a"): 1.0, ("u", "b"): 5.0}
        result = max_weight_matching(["u"], ["a", "b"], weights)
        assert result == {"u": "b"}

    def test_chooses_global_optimum_over_greedy(self):
        # Greedy would give u1-a (10) leaving u2 unmatched (worth 10);
        # optimum is u1-b (9) + u2-a (8) = 17.
        weights = {
            ("u1", "a"): 10.0,
            ("u1", "b"): 9.0,
            ("u2", "a"): 8.0,
        }
        result = max_weight_matching(["u1", "u2"], ["a", "b"], weights)
        assert result == {"u1": "b", "u2": "a"}

    def test_unmatched_nodes_allowed(self):
        weights = {("u1", "a"): 2.0}
        result = max_weight_matching(["u1", "u2"], ["a"], weights)
        assert result == {"u1": "a"}

    def test_rectangular_graphs(self):
        weights = {(f"u{i}", "v0"): float(i + 1) for i in range(5)}
        result = max_weight_matching(
            [f"u{i}" for i in range(5)], ["v0"], weights
        )
        assert result == {"u4": "v0"}


class TestValidation:
    def test_zero_weight_rejected(self):
        with pytest.raises(BindingError):
            max_weight_matching(["u"], ["v"], {("u", "v"): 0.0})

    def test_negative_weight_rejected(self):
        with pytest.raises(BindingError):
            max_weight_matching(["u"], ["v"], {("u", "v"): -1.0})

    def test_unknown_node_rejected(self):
        with pytest.raises(BindingError):
            max_weight_matching(["u"], ["v"], {("u", "x"): 1.0})

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(BindingError):
            max_weight_matching(["u", "u"], ["v"], {("u", "v"): 1.0})


@st.composite
def bipartite_instance(draw):
    n_left = draw(st.integers(1, 6))
    n_right = draw(st.integers(1, 6))
    left = [f"u{i}" for i in range(n_left)]
    right = [f"v{j}" for j in range(n_right)]
    weights = {}
    for u in left:
        for v in right:
            if draw(st.booleans()):
                weights[(u, v)] = draw(
                    st.floats(0.1, 100.0, allow_nan=False)
                )
    return left, right, weights


class TestOracle:
    @settings(max_examples=80, deadline=None)
    @given(bipartite_instance())
    def test_scipy_and_python_agree_on_weight(self, instance):
        left, right, weights = instance
        fast = max_weight_matching(left, right, weights)
        slow = max_weight_matching_python(left, right, weights)
        assert matching_weight(fast, weights) == pytest.approx(
            matching_weight(slow, weights)
        )

    @settings(max_examples=50, deadline=None)
    @given(bipartite_instance())
    def test_matching_is_valid(self, instance):
        left, right, weights = instance
        result = max_weight_matching(left, right, weights)
        assert len(set(result.values())) == len(result)  # injective
        for u, v in result.items():
            assert (u, v) in weights

    @settings(max_examples=50, deadline=None)
    @given(bipartite_instance())
    def test_matching_is_maximal(self, instance):
        """With positive weights, no edge between two free vertices can
        remain (adding it would strictly increase the total)."""
        left, right, weights = instance
        result = max_weight_matching(left, right, weights)
        used_right = set(result.values())
        for (u, v), _ in weights.items():
            assert u in result or v in used_right
