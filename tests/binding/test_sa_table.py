"""Tests for the precalculated SA table."""

import os

import pytest

from repro.errors import BindingError
from repro.binding.sa_table import SATable, SATableConfig


class TestLookup:
    def test_lazy_compute_and_cache(self, sa_table):
        first = sa_table.get("add", 2, 1)
        assert first > 0
        before = len(sa_table)
        second = sa_table.get("add", 1, 2)  # normalized to same key
        assert len(sa_table) == before
        assert second == first

    def test_symmetric_normalization(self):
        assert SATable.normalize("add", 5, 2) == ("add", 2, 5)
        assert SATable.normalize("mult", 2, 5) == ("mult", 2, 5)

    def test_unknown_class_rejected(self):
        with pytest.raises(BindingError):
            SATable.normalize("div", 1, 1)

    def test_zero_mux_rejected(self):
        with pytest.raises(BindingError):
            SATable.normalize("add", 0, 1)

    def test_contains(self, sa_table):
        sa_table.get("add", 1, 1)
        assert ("add", 1, 1) in sa_table

    def test_sa_grows_with_mux_size(self, sa_table):
        """Section 5.2.2: bigger partial datapaths switch more."""
        small = sa_table.get("add", 1, 1)
        medium = sa_table.get("add", 3, 3)
        large = sa_table.get("add", 5, 5)
        assert small < medium < large

    def test_mult_costs_more_than_add(self, sa_table):
        assert sa_table.get("mult", 2, 2) > sa_table.get("add", 2, 2)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "table.txt")
        table = SATable(SATableConfig(width=3), path)
        value = table.get("add", 2, 2)
        table.save()
        reloaded = SATable(SATableConfig(width=3), path)
        assert len(reloaded) == 1
        assert reloaded.get("add", 2, 2) == value

    def test_save_requires_path(self):
        table = SATable()
        table.get("add", 1, 1)
        with pytest.raises(BindingError):
            table.save()

    def test_other_config_entries_skipped(self, tmp_path):
        path = str(tmp_path / "table.txt")
        narrow = SATable(SATableConfig(width=3), path)
        narrow.get("add", 1, 1)
        narrow.save()
        wide = SATable(SATableConfig(width=4), path)
        assert len(wide) == 0

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "table.txt"
        path.write_text("add 1 1 garbage\n")
        with pytest.raises(BindingError):
            SATable(SATableConfig(), str(path))

    def test_save_if_dirty(self, tmp_path):
        path = str(tmp_path / "table.txt")
        table = SATable(SATableConfig(width=3), path)
        table.save_if_dirty()  # nothing computed: no file forced
        table.get("add", 1, 1)
        table.save_if_dirty()
        assert os.path.exists(path)


class TestPrecalculate:
    def test_precalculate_fills_triangle(self, tmp_path):
        table = SATable(SATableConfig(width=3))
        computed = table.precalculate(max_mux=2, fu_classes=("add",))
        assert computed == 3  # (1,1), (1,2), (2,2)
        assert table.precalculate(max_mux=2, fu_classes=("add",)) == 0

    def test_mapped_mode_differs_from_gate_level(self):
        gate_level = SATable(SATableConfig(width=3, map_to_luts=False))
        mapped = SATable(SATableConfig(width=3, map_to_luts=True))
        a = gate_level.get("add", 2, 2)
        b = mapped.get("add", 2, 2)
        assert a != b
        assert a > 0 and b > 0

    def test_mapped_mode_preserves_ordering(self):
        """The paper's precalc-vs-dynamic equivalence claim, in our
        setting: both estimation modes rank candidate mux shapes the
        same way."""
        gate_level = SATable(SATableConfig(width=3, map_to_luts=False))
        mapped = SATable(SATableConfig(width=3, map_to_luts=True))
        shapes = [(1, 1), (2, 2), (4, 4)]
        order_a = sorted(shapes, key=lambda s: gate_level.get("add", *s))
        order_b = sorted(shapes, key=lambda s: mapped.get("add", *s))
        assert order_a == order_b
