"""Tests for the precalculated SA table."""

import glob
import os
import threading

import pytest

from repro.errors import BindingError
from repro.binding.sa_table import SATable, SATableConfig


class TestLookup:
    def test_lazy_compute_and_cache(self, sa_table):
        first = sa_table.get("add", 2, 1)
        assert first > 0
        before = len(sa_table)
        second = sa_table.get("add", 1, 2)  # normalized to same key
        assert len(sa_table) == before
        assert second == first

    def test_symmetric_normalization(self):
        assert SATable.normalize("add", 5, 2) == ("add", 2, 5)
        assert SATable.normalize("mult", 2, 5) == ("mult", 2, 5)

    def test_unknown_class_rejected(self):
        with pytest.raises(BindingError):
            SATable.normalize("div", 1, 1)

    def test_zero_mux_rejected(self):
        with pytest.raises(BindingError):
            SATable.normalize("add", 0, 1)

    def test_contains(self, sa_table):
        sa_table.get("add", 1, 1)
        assert ("add", 1, 1) in sa_table

    def test_sa_grows_with_mux_size(self, sa_table):
        """Section 5.2.2: bigger partial datapaths switch more."""
        small = sa_table.get("add", 1, 1)
        medium = sa_table.get("add", 3, 3)
        large = sa_table.get("add", 5, 5)
        assert small < medium < large

    def test_mult_costs_more_than_add(self, sa_table):
        assert sa_table.get("mult", 2, 2) > sa_table.get("add", 2, 2)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "table.txt")
        table = SATable(SATableConfig(width=3), path)
        value = table.get("add", 2, 2)
        table.save()
        reloaded = SATable(SATableConfig(width=3), path)
        assert len(reloaded) == 1
        assert reloaded.get("add", 2, 2) == value

    def test_save_requires_path(self):
        table = SATable()
        table.get("add", 1, 1)
        with pytest.raises(BindingError):
            table.save()

    def test_other_config_entries_skipped(self, tmp_path):
        path = str(tmp_path / "table.txt")
        narrow = SATable(SATableConfig(width=3), path)
        narrow.get("add", 1, 1)
        narrow.save()
        wide = SATable(SATableConfig(width=4), path)
        assert len(wide) == 0

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "table.txt"
        path.write_text("add 1 1 garbage\n")
        with pytest.raises(BindingError):
            SATable(SATableConfig(), str(path))

    def test_save_if_dirty(self, tmp_path):
        path = str(tmp_path / "table.txt")
        table = SATable(SATableConfig(width=3), path)
        table.save_if_dirty()  # nothing computed: no file forced
        table.get("add", 1, 1)
        table.save_if_dirty()
        assert os.path.exists(path)


def _bulk_entries(n: int):
    """n synthetic entries per FU class (no estimation, just keys)."""
    entries = {}
    for fu_class in ("add", "mult"):
        count = 0
        for mux_a in range(1, n + 1):
            for mux_b in range(mux_a, n + 1):
                entries[(fu_class, mux_a, mux_b)] = 0.125 * (mux_a + mux_b)
                count += 1
    return entries


class TestMerge:
    def test_merge_adds_and_marks_dirty(self, tmp_path):
        table = SATable(SATableConfig(width=3), str(tmp_path / "t.txt"))
        added = table.merge({("add", 1, 1): 1.5, ("add", 1, 2): 2.5})
        assert added == 2
        assert len(table) == 2
        table.save_if_dirty()  # dirty after merge -> file appears
        assert os.path.exists(table.path)

    def test_merge_never_overwrites(self):
        table = SATable(SATableConfig(width=3))
        table.merge({("add", 1, 1): 1.5})
        assert table.merge({("add", 1, 1): 99.0}) == 0
        assert table.get("add", 1, 1) == 1.5

    def test_snapshot_is_a_copy(self):
        table = SATable(SATableConfig(width=3))
        table.merge({("add", 1, 1): 1.5})
        snapshot = table.snapshot()
        snapshot[("add", 2, 2)] = 9.0
        assert len(table) == 1


class TestProcessSafeSave:
    """The sweep-worker scenario: concurrent saves of data/sa_table.txt
    must never leave a torn or partial file behind."""

    def test_concurrent_saves_never_corrupt(self, tmp_path):
        path = str(tmp_path / "table.txt")
        entries = _bulk_entries(18)  # ~340 lines, several write() calls
        table = SATable(SATableConfig(width=3), path)
        table.merge(entries)
        table.save()

        errors = []

        def hammer():
            local = SATable(SATableConfig(width=3))
            local.merge(entries)
            local.path = path
            try:
                for _ in range(20):
                    local.save()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writers = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in writers:
            thread.start()
        # Read continuously while the writers race each other: every
        # observable file state must parse and be complete.
        while any(thread.is_alive() for thread in writers):
            reloaded = SATable(SATableConfig(width=3), path)
            assert len(reloaded) == len(entries)
        for thread in writers:
            thread.join()
        assert errors == []
        reloaded = SATable(SATableConfig(width=3), path)
        assert len(reloaded) == len(entries)

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "table.txt")
        table = SATable(SATableConfig(width=3), path)
        table.merge(_bulk_entries(4))
        table.save()
        leftovers = [
            name
            for name in glob.glob(str(tmp_path / "*"))
            if os.path.basename(name) != "table.txt"
        ]
        assert leftovers == []

    def test_save_preserves_file_permissions(self, tmp_path):
        path = str(tmp_path / "table.txt")
        table = SATable(SATableConfig(width=3), path)
        table.merge({("add", 1, 1): 1.0})
        table.save()
        umask = os.umask(0)
        os.umask(umask)
        # A fresh file honors the umask, not mkstemp's 0600 default.
        assert os.stat(path).st_mode & 0o777 == 0o666 & ~umask
        os.chmod(path, 0o604)
        table.merge({("add", 1, 2): 2.0})
        table.save()
        assert os.stat(path).st_mode & 0o777 == 0o604

    def test_failed_save_cleans_temp_and_keeps_old_file(self, tmp_path):
        path = str(tmp_path / "table.txt")
        table = SATable(SATableConfig(width=3), path)
        table.merge({("add", 1, 1): 1.0})
        table.save()
        before = open(path).read()

        # Corrupt the in-memory values so formatting raises mid-write.
        table.merge({("mult", 1, 1): "not-a-float"})
        with pytest.raises(Exception):
            table.save()
        assert open(path).read() == before  # old content intact
        leftovers = [
            name
            for name in os.listdir(tmp_path)
            if name != "table.txt"
        ]
        assert leftovers == []


class TestPrecalculate:
    def test_precalculate_fills_triangle(self, tmp_path):
        table = SATable(SATableConfig(width=3))
        computed = table.precalculate(max_mux=2, fu_classes=("add",))
        assert computed == 3  # (1,1), (1,2), (2,2)
        assert table.precalculate(max_mux=2, fu_classes=("add",)) == 0

    def test_mapped_mode_differs_from_gate_level(self):
        gate_level = SATable(SATableConfig(width=3, map_to_luts=False))
        mapped = SATable(SATableConfig(width=3, map_to_luts=True))
        a = gate_level.get("add", 2, 2)
        b = mapped.get("add", 2, 2)
        assert a != b
        assert a > 0 and b > 0

    def test_mapped_mode_preserves_ordering(self):
        """The paper's precalc-vs-dynamic equivalence claim, in our
        setting: both estimation modes rank candidate mux shapes the
        same way."""
        gate_level = SATable(SATableConfig(width=3, map_to_luts=False))
        mapped = SATable(SATableConfig(width=3, map_to_luts=True))
        shapes = [(1, 1), (2, 2), (4, 4)]
        order_a = sorted(shapes, key=lambda s: gate_level.get("add", *s))
        order_b = sorted(shapes, key=lambda s: mapped.get("add", *s))
        assert order_a == order_b
