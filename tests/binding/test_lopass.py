"""Tests for the LOPASS-style network-flow baseline binder."""

import pytest

from repro.errors import ResourceError
from repro.binding import assign_ports, bind_lopass, bind_registers
from repro.cdfg import Schedule, benchmark_spec, figure1_example, load_benchmark
from repro.scheduling import list_schedule


def figure1_sched():
    cdfg, start_times = figure1_example()
    return Schedule(cdfg, start_times)


class TestFlowBinding:
    def test_figure1_allocation(self):
        schedule = figure1_sched()
        solution = bind_lopass(schedule, {"add": 2, "mult": 1})
        solution.validate()
        assert solution.fus.allocation() == {"add": 2, "mult": 1}
        assert solution.algorithm == "lopass"

    def test_every_operation_covered(self):
        schedule = figure1_sched()
        solution = bind_lopass(schedule, {"add": 2, "mult": 1})
        bound = {op for unit in solution.fus.units for op in unit.ops}
        assert bound == set(schedule.cdfg.operations)

    def test_chains_respect_schedule_order(self):
        schedule = figure1_sched()
        solution = bind_lopass(schedule, {"add": 2, "mult": 1})
        for unit in solution.fus.units:
            steps = sorted(
                schedule.start_of(schedule.cdfg.operations[op])
                for op in unit.ops
            )
            assert len(set(steps)) == len(steps)

    def test_infeasible_constraint_rejected(self):
        schedule = figure1_sched()
        with pytest.raises(ResourceError):
            bind_lopass(schedule, {"add": 1, "mult": 1})

    def test_missing_constraint_rejected(self):
        schedule = figure1_sched()
        with pytest.raises(ResourceError):
            bind_lopass(schedule, {"add": 2})

    def test_extra_units_absorbed_by_idle_edge(self):
        schedule = figure1_sched()
        solution = bind_lopass(schedule, {"add": 5, "mult": 4})
        # Flow may leave some units unused; allocation never exceeds
        # the constraint, and all ops stay covered.
        allocation = solution.fus.allocation()
        assert allocation["add"] <= 5
        assert allocation["mult"] <= 4
        bound = {op for unit in solution.fus.units for op in unit.ops}
        assert bound == set(schedule.cdfg.operations)

    @pytest.mark.parametrize("name", ["pr", "wang", "honda"])
    def test_benchmarks_bind_validly(self, name):
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        solution = bind_lopass(schedule, spec.constraints)
        solution.validate()
        assert solution.fus.allocation() == spec.constraints

    def test_deterministic(self):
        spec = benchmark_spec("pr")
        schedule = list_schedule(load_benchmark("pr"), spec.constraints)
        regs = bind_registers(schedule)
        ports = assign_ports(schedule.cdfg)
        first = bind_lopass(schedule, spec.constraints, regs, ports)
        second = bind_lopass(schedule, spec.constraints, regs, ports)
        assert [sorted(u.ops) for u in first.fus.units] == [
            sorted(u.ops) for u in second.fus.units
        ]

    def test_shares_register_binding_with_hlpower(self, sa_table):
        """The paper's setup: identical registers/ports for both."""
        from repro.binding import HLPowerConfig, bind_hlpower

        spec = benchmark_spec("pr")
        schedule = list_schedule(load_benchmark("pr"), spec.constraints)
        regs = bind_registers(schedule)
        ports = assign_ports(schedule.cdfg)
        lo = bind_lopass(schedule, spec.constraints, regs, ports)
        hl = bind_hlpower(
            schedule, spec.constraints, regs, ports,
            HLPowerConfig(sa_table=sa_table),
        )
        assert lo.registers is hl.registers
        assert lo.ports is hl.ports
