"""Differential pinning: the vectorized bind engines vs the seed binders.

``bind_engine="fast"`` must be a pure speedup — identical
BindingSolutions (same units, same operations per unit, same order)
and byte-identical downstream FlowResults versus the seed binders
kept behind ``bind_engine="reference"``. The full benchmark x binder
cross-product (including perturbed resource constraints) is
slow-marked; a smoke subset stays in tier-1 so every push checks the
contract.

The suite also measures both heuristics against the exact
branch-and-bound binder (:func:`repro.binding.bind_optimal`) on the
oracle-feasible corpus instances, pinning the FU-mux-length quality
gaps as golden numbers — engine work that shifts a heuristic's
decisions shows up here immediately.
"""

import pytest

from repro import BENCHMARK_NAMES, benchmark_spec
from repro.binding import bind_hlpower, bind_lopass, bind_optimal
from repro.binding.compile import (
    BindMemo,
    bind_hlpower_fast,
    bind_lopass_fast,
)
from repro.binding.hlpower import HLPowerConfig
from repro.cdfg import load_benchmark
from repro.cdfg.corpus import (
    CORPUS,
    classic_corpus_names,
    corpus_instance,
    oracle_feasible,
)
from repro.flow.run import FlowConfig, run_flow
from repro.rtl.metrics import mux_report
from repro.scheduling import list_schedule
from repro.flow.run import prepare_flow_inputs

#: Small benchmarks that keep the smoke subset inside tier-1 budget.
_SMOKE_BENCHMARKS = ("pr", "wang", "honda")

_ELABORATED = {}


def elaborated(benchmark: str, constraints=None):
    """Memoized (schedule, constraints, registers, ports)."""
    spec = benchmark_spec(benchmark)
    constraints = dict(constraints or spec.constraints)
    key = (benchmark, tuple(sorted(constraints.items())))
    if key not in _ELABORATED:
        schedule = list_schedule(load_benchmark(benchmark), constraints)
        registers, ports = prepare_flow_inputs(schedule)
        _ELABORATED[key] = (schedule, constraints, registers, ports)
    return _ELABORATED[key]


def assert_identical(reference, fast):
    """Every observable of the two BindingSolutions must match."""
    assert reference.algorithm == fast.algorithm
    assert reference.fus.constraint_met == fast.fus.constraint_met
    assert len(reference.fus.units) == len(fast.fus.units)
    for expected, actual in zip(reference.fus.units, fast.fus.units):
        assert expected.fu_id == actual.fu_id
        assert expected.fu_class == actual.fu_class
        assert expected.ops == actual.ops
    assert reference.registers.assignment == fast.registers.assignment
    assert reference.ports.ports == fast.ports.ports


def both_engines(benchmark, binder, sa_table, constraints=None):
    schedule, limits, registers, ports = elaborated(benchmark, constraints)
    if binder == "hlpower":
        cfg = HLPowerConfig(sa_table=sa_table)
        reference = bind_hlpower(schedule, limits, registers, ports, cfg)
        fast = bind_hlpower_fast(schedule, limits, registers, ports, cfg)
    else:
        reference = bind_lopass(schedule, limits, registers, ports)
        fast = bind_lopass_fast(schedule, limits, registers, ports)
    return reference, fast


class TestSmoke:
    """Tier-1: the contract holds on small benchmarks, every push."""

    @pytest.mark.parametrize("bench_name", _SMOKE_BENCHMARKS)
    @pytest.mark.parametrize("binder", ("lopass", "hlpower"))
    def test_fast_matches_reference(self, bench_name, binder, sa_table):
        reference, fast = both_engines(bench_name, binder, sa_table)
        assert_identical(reference, fast)

    def test_memo_reuse_changes_nothing(self, sa_table):
        """A warm BindMemo must reproduce the cold run exactly."""
        schedule, limits, registers, ports = elaborated("honda")
        cfg = HLPowerConfig(sa_table=sa_table)
        memo = BindMemo()
        cold = bind_hlpower_fast(
            schedule, limits, registers, ports, cfg, memo
        )
        assert memo.stats()["entries"] > 0
        assert memo.stats()["hits"] == 0
        warm = bind_hlpower_fast(
            schedule, limits, registers, ports, cfg, memo
        )
        assert memo.stats()["hits"] > 0
        assert_identical(cold, warm)

    def test_memo_is_alpha_independent(self, sa_table):
        """Alpha sweeps share every block whose node sets coincide."""
        schedule, limits, registers, ports = elaborated("wang")
        memo = BindMemo()
        bind_hlpower_fast(
            schedule, limits, registers, ports,
            HLPowerConfig(alpha=0.5, sa_table=sa_table), memo,
        )
        entries = memo.stats()["entries"]
        reference = bind_hlpower(
            schedule, limits, registers, ports,
            HLPowerConfig(alpha=1.0, sa_table=sa_table),
        )
        fast = bind_hlpower_fast(
            schedule, limits, registers, ports,
            HLPowerConfig(alpha=1.0, sa_table=sa_table), memo,
        )
        assert_identical(reference, fast)
        # The first round's node sets are alpha-independent, so the
        # alpha=1.0 run must have reused at least that block.
        assert memo.stats()["hits"] >= 1
        assert memo.stats()["entries"] >= entries

    def test_flow_results_identical(self, sa_table):
        """Downstream measurements are byte-identical across engines."""
        spec = benchmark_spec("pr")
        schedule, limits, registers, ports = elaborated("pr")
        results = {}
        for engine in ("fast", "reference"):
            config = FlowConfig(
                n_vectors=32, sa_table=sa_table, bind_engine=engine
            )
            for binder in ("lopass", "hlpower"):
                result = run_flow(
                    schedule, limits, binder, config, registers, ports
                )
                results[(engine, binder)] = result.metrics()
        for binder in ("lopass", "hlpower"):
            assert results[("fast", binder)] == results[
                ("reference", binder)
            ]


@pytest.mark.slow
class TestFullCrossProduct:
    """All 7 benchmarks x binders, plus perturbed constraints."""

    @pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
    @pytest.mark.parametrize("binder", ("lopass", "hlpower"))
    def test_fast_matches_reference(self, bench_name, binder, sa_table):
        reference, fast = both_engines(bench_name, binder, sa_table)
        assert_identical(reference, fast)

    @pytest.mark.parametrize("bench_name", ("honda", "mcm", "dir"))
    @pytest.mark.parametrize("binder", ("lopass", "hlpower"))
    @pytest.mark.parametrize("extra", (1, 2))
    def test_relaxed_constraints(self, bench_name, binder, extra, sa_table):
        """Looser FU budgets change the instance, not the contract."""
        spec = benchmark_spec(bench_name)
        limits = {
            cls: count + extra for cls, count in spec.constraints.items()
        }
        reference, fast = both_engines(
            bench_name, binder, sa_table, constraints=limits
        )
        assert_identical(reference, fast)

    # The classic 90-instance corpus; the extended seed ranges and the
    # huge/soc scaling families are exercised by sampled tests and the
    # scaling bench, not the full cross-product.
    @pytest.mark.parametrize("name", sorted(classic_corpus_names()))
    @pytest.mark.parametrize("binder", ("lopass", "hlpower"))
    def test_corpus_cross_product(self, name, binder, sa_table):
        reference, fast = both_engines(name, binder, sa_table)
        assert_identical(reference, fast)


# ---------------------------------------------------------------------------
# Oracle differential: heuristics vs the exact binder.
# ---------------------------------------------------------------------------

#: Golden FU-mux-length gaps on a pinned slice of the micro family:
#: instance -> (optimal, lopass, hlpower alpha=0.5). Regenerate ONLY
#: when a deliberate algorithm change shifts binding decisions (and
#: record why in the commit).
_GOLDEN_ORACLE = {
    "micro-n8-m30-d70-s0": (11, 11, 11),
    "micro-n8-m30-d70-s1": (10, 12, 10),
    "micro-n8-m30-d100-s0": (8, 8, 14),
    "micro-n10-m50-d70-s0": (13, 13, 13),
    "micro-n12-m70-d100-s2": (11, 15, 21),
}


def oracle_lengths(name, sa_table):
    instance = corpus_instance(name)
    schedule, limits, registers, ports = elaborated(
        name, instance.constraints
    )
    optimal = bind_optimal(schedule, limits, registers, ports)
    lopass = bind_lopass_fast(schedule, limits, registers, ports)
    hlpower = bind_hlpower_fast(
        schedule, limits, registers, ports,
        HLPowerConfig(sa_table=sa_table),
    )
    return (
        mux_report(optimal).fu_mux_length,
        mux_report(lopass).fu_mux_length,
        mux_report(hlpower).fu_mux_length,
    )


class TestOracleGap:
    @pytest.mark.parametrize("name", sorted(_GOLDEN_ORACLE))
    def test_golden_gaps(self, name, sa_table):
        assert oracle_lengths(name, sa_table) == _GOLDEN_ORACLE[name]

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "name",
        sorted(
            n for n in classic_corpus_names()
            if oracle_feasible(CORPUS[n])
        ),
    )
    def test_heuristics_never_beat_the_oracle(self, name, sa_table):
        """The exact binder's objective is a true lower bound."""
        optimal, lopass, hlpower = oracle_lengths(name, sa_table)
        assert lopass >= optimal
        assert hlpower >= optimal
