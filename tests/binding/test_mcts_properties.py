"""Property tests: the MCTS binder's determinism and legality contract.

Three invariant families, over random corpus draws and knob settings:

* **determinism** — same (budget, seed) means a byte-identical
  solution across repeat runs in one process, and byte-identical cell
  metrics across process-pool workers (the sweep engine ships jobs to
  a ``ProcessPoolExecutor``; a playout that consulted any global or
  hash-randomized state would diverge there first);
* **degeneration** — budget 0 returns exactly the best heuristic's
  assignment (the search's incumbent baseline), so the binder is a
  strict superset of the heuristics, never a replacement;
* **legality** — every solution binds each operation exactly once to a
  unit of its class, with no two time-overlapping operations sharing a
  unit, no register-lifetime conflicts, and the per-class unit counts
  within the resource constraints.
"""

from hypothesis import given, settings, strategies as st

from repro.binding.compile import bind_hlpower_fast, bind_lopass_fast
from repro.binding.mcts import MCTSConfig, bind_mcts
from repro.cdfg import load_benchmark
from repro.cdfg.corpus import (
    classic_corpus_names,
    corpus_instances,
    oracle_feasible,
)
from repro.flow.batch import run_sweep
from repro.flow.grid import SweepSpec
from repro.flow.run import prepare_flow_inputs
from repro.rtl.metrics import mux_report
from repro.scheduling import list_schedule

_ORACLE_SLICE = [
    instance for instance in corpus_instances()
    if instance.name in set(classic_corpus_names())
    and oracle_feasible(instance)
]

_ELABORATED = {}


def elaborated(instance):
    if instance.name not in _ELABORATED:
        schedule = list_schedule(
            load_benchmark(instance.name), instance.constraints
        )
        registers, ports = prepare_flow_inputs(schedule)
        _ELABORATED[instance.name] = (
            schedule, instance.constraints, registers, ports
        )
    return _ELABORATED[instance.name]


def solution_bytes(solution):
    """A canonical byte serialization of the binding decisions."""
    return repr((
        solution.algorithm,
        solution.fus.constraint_met,
        [(unit.fu_id, unit.fu_class, sorted(unit.ops))
         for unit in solution.fus.units],
        sorted(solution.registers.assignment.items()),
        sorted(solution.ports.ports.items()),
    )).encode()


draws = st.integers(min_value=0, max_value=len(_ORACLE_SLICE) - 1)
budgets = st.sampled_from((0, 1, 8, 33))
seeds = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)


@settings(max_examples=15, deadline=None)
@given(index=draws, budget=budgets, seed=seeds)
def test_repeat_runs_byte_identical(index, budget, seed):
    instance = _ORACLE_SLICE[index]
    schedule, limits, registers, ports = elaborated(instance)
    cfg = MCTSConfig(budget=budget, seed=seed)
    first = bind_mcts(schedule, limits, registers, ports, cfg)
    second = bind_mcts(schedule, limits, registers, ports, cfg)
    assert solution_bytes(first) == solution_bytes(second)


@settings(max_examples=15, deadline=None)
@given(index=draws, budget=budgets, seed=seeds)
def test_solutions_always_legal(index, budget, seed):
    instance = _ORACLE_SLICE[index]
    schedule, limits, registers, ports = elaborated(instance)
    solution = bind_mcts(schedule, limits, registers, ports,
                         MCTSConfig(budget=budget, seed=seed))
    # Completeness, class purity, time overlaps, register lifetimes.
    solution.validate()
    assert solution.algorithm == "mcts"
    assert solution.fus.constraint_met
    for fu_class, limit in limits.items():
        assert len(solution.fus.units_of_class(fu_class)) <= limit


@settings(max_examples=10, deadline=None)
@given(index=draws, seed=seeds)
def test_budget_zero_is_exactly_the_best_heuristic(index, seed):
    instance = _ORACLE_SLICE[index]
    schedule, limits, registers, ports = elaborated(instance)
    hlpower = bind_hlpower_fast(schedule, limits, registers, ports)
    lopass = bind_lopass_fast(schedule, limits, registers, ports)

    def objective(solution):
        report = mux_report(solution)
        return (report.fu_mux_length, sum(report.mux_diffs))

    # Ties resolve to HLPower — the same order bind_mcts evaluates.
    best = min((hlpower, lopass), key=objective)
    degenerate = bind_mcts(schedule, limits, registers, ports,
                           MCTSConfig(budget=0, seed=seed))
    assert objective(degenerate) == objective(best)
    assert {
        (unit.fu_class, unit.ops) for unit in degenerate.fus.units
    } == {
        (unit.fu_class, unit.ops) for unit in best.fus.units
    }


def test_pool_workers_byte_identical():
    # The same grid through the in-process executor and through a
    # 2-worker process pool: every metric of every cell must match
    # exactly (fresh workers, fresh memos, same decisions).
    spec = SweepSpec(
        benchmarks=[instance.name for instance in _ORACLE_SLICE[:3]],
        binders=("mcts",),
        baseline="none",
        flow="estimate",
        mcts_budget=16,
        mcts_seed=5,
    )
    solo = run_sweep(spec, jobs=1)
    pooled = run_sweep(spec, jobs=2)
    assert {cell.key: cell.metrics for cell in solo.cells} == \
        {cell.key: cell.metrics for cell in pooled.cells}
