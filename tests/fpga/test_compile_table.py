"""Property tests for the simulator's compiled truth-table evaluators.

``_compile_table`` turns a :class:`TruthTable` into a packed-word
evaluator via Shannon expansion; the simulator's correctness rests on
it agreeing with direct truth-table evaluation for *every* function,
so it gets its own exhaustive + property coverage.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fpga.simulate import _compile_table
from repro.fpga.vectors import broadcast, pack_values, unpack_values
from repro.netlist.gates import GateType, TruthTable


def evaluate_packed(table: TruthTable, input_bits, lanes: int):
    """Run the compiled evaluator on per-lane boolean inputs."""
    ones = broadcast(True, lanes)
    zeros = np.zeros_like(ones)
    values = [pack_values(bits) for bits in input_bits]
    evaluator = _compile_table(table)
    return unpack_values(evaluator(values, ones, zeros), lanes)


class TestExhaustiveSmall:
    @pytest.mark.parametrize("bits", range(16))
    def test_all_two_input_functions(self, bits):
        table = TruthTable(2, bits)
        lanes = 4
        input_bits = [
            [False, True, False, True],   # input 0 per lane
            [False, False, True, True],   # input 1 per lane
        ]
        expected = [
            table.evaluate([input_bits[0][lane], input_bits[1][lane]])
            for lane in range(lanes)
        ]
        assert evaluate_packed(table, input_bits, lanes) == expected

    def test_constants(self):
        lanes = 5
        assert evaluate_packed(TruthTable.constant(True), [], lanes) == (
            [True] * lanes
        )
        assert evaluate_packed(TruthTable.constant(False), [], lanes) == (
            [False] * lanes
        )

    def test_named_gates(self):
        lanes = 8
        rng_bits = [
            [bool((lane >> 0) & 1) for lane in range(lanes)],
            [bool((lane >> 1) & 1) for lane in range(lanes)],
            [bool((lane >> 2) & 1) for lane in range(lanes)],
        ]
        for gate_type in (GateType.AND, GateType.OR, GateType.XOR,
                          GateType.NAND, GateType.NOR, GateType.XNOR):
            table = TruthTable.for_type(gate_type, 3)
            expected = [
                table.evaluate([bits[lane] for bits in rng_bits])
                for lane in range(lanes)
            ]
            assert evaluate_packed(table, rng_bits, lanes) == expected


@settings(max_examples=80, deadline=None)
@given(
    st.integers(1, 4).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.integers(0, (1 << (1 << n)) - 1),
            st.lists(
                st.lists(st.booleans(), min_size=7, max_size=7),
                min_size=n, max_size=n,
            ),
        )
    )
)
def test_compiled_matches_reference(case):
    n, bits, input_bits = case
    table = TruthTable(n, bits)
    lanes = 7
    expected = [
        table.evaluate([input_bits[i][lane] for i in range(n)])
        for lane in range(lanes)
    ]
    assert evaluate_packed(table, input_bits, lanes) == expected


def test_tail_lanes_masked():
    """Results must have clean bits past the last lane (broadcast ones
    masking), or toggle counting would see ghost lanes."""
    table = TruthTable.for_type(GateType.NOT, 1)
    lanes = 3
    result_words = _compile_table(table)(
        [pack_values([False] * lanes)],
        broadcast(True, lanes),
        np.zeros(1, dtype=np.uint64),
    )
    assert int(result_words[0]) == 0b111  # only 3 lanes set


def test_evaluator_cache_reuse():
    from repro.fpga.simulate import _EVALUATOR_CACHE

    table = TruthTable(3, 0b10110010)
    first = _compile_table(table)
    second = _compile_table(TruthTable(3, 0b10110010))
    assert first is second
    assert (3, 0b10110010) in _EVALUATOR_CACHE
