"""Differential test: event-driven kernel vs the reference simulator.

The event kernel (compiled netlist + time-wheel settling) and the seed
timed-waveform loop implement the same delay model, so for every design
their :class:`SimulationResult` records must be *byte-identical* — all
four toggle counters, the per-net toggle map, and the primary-output
values — not merely close. This is pinned across every built-in
benchmark, both idle-select conventions, and jittered delays.
"""

import pytest

from repro import BENCHMARK_NAMES, benchmark_spec, list_schedule, load_benchmark
from repro.binding import assign_ports, bind_lopass, bind_registers
from repro.fpga import (
    ElaboratedDesign,
    compile_netlist,
    elaborate_datapath,
    random_vectors,
    simulate_design,
)
from repro.errors import SimulationError
from repro.rtl import build_datapath
from repro.techmap import map_netlist

WIDTH = 4
#: Not a multiple of 64, so the tail-lane masking is exercised too.
LANES = 48
SEED = 11


@pytest.fixture(scope="module", params=BENCHMARK_NAMES)
def mapped_design(request):
    """LUT-mapped design + stimulus for one built-in benchmark."""
    name = request.param
    spec = benchmark_spec(name)
    schedule = list_schedule(load_benchmark(name), spec.constraints)
    registers = bind_registers(schedule)
    ports = assign_ports(schedule.cdfg)
    solution = bind_lopass(schedule, spec.constraints, registers, ports)
    datapath = build_datapath(solution, WIDTH)
    design = elaborate_datapath(datapath)
    mapping = map_netlist(design.netlist, k=4)
    mapped = ElaboratedDesign(
        datapath,
        mapping.netlist,
        design.pad_nets,
        design.register_nets,
        design.fu_nets,
        design.control_nets,
        design.output_nets,
    )
    vectors = random_vectors(
        len(schedule.cdfg.primary_inputs), WIDTH, LANES, seed=SEED
    )
    return mapped, vectors


@pytest.mark.parametrize("idle_selects", ["zero", "hold"])
@pytest.mark.parametrize("delay_jitter", [0, 2])
def test_kernels_byte_identical(mapped_design, idle_selects, delay_jitter):
    design, vectors = mapped_design
    event = simulate_design(
        design, vectors, collect_per_net=True,
        idle_selects=idle_selects, delay_jitter=delay_jitter,
    )
    reference = simulate_design(
        design, vectors, collect_per_net=True,
        idle_selects=idle_selects, delay_jitter=delay_jitter,
        kernel="reference",
    )
    # Dataclass equality covers every counter, the per-net map and the
    # per-lane outputs.
    assert event == reference


def test_unknown_kernel_rejected(mapped_design):
    design, vectors = mapped_design
    with pytest.raises(SimulationError):
        simulate_design(design, vectors, kernel="quantum")


def test_compiled_netlist_is_cached(mapped_design):
    design, _ = mapped_design
    first = compile_netlist(design.netlist, 0)
    assert compile_netlist(design.netlist, 0) is first
    # A different delay spread compiles (and caches) separately.
    jittered = compile_netlist(design.netlist, 2)
    assert jittered is not first
    assert compile_netlist(design.netlist, 2) is jittered


def test_compiled_netlist_invalidated_on_mutation(mapped_design):
    design, _ = mapped_design
    netlist = design.netlist
    first = compile_netlist(netlist, 0)
    pi = netlist.add_input()
    try:
        recompiled = compile_netlist(netlist, 0)
        assert recompiled is not first
        assert recompiled.n_nets == first.n_nets + 1
    finally:
        netlist.inputs.remove(pi)
        netlist._sim_compiled.clear()
