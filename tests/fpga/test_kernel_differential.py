"""Differential test: event-driven kernel vs the reference simulator.

The event kernel (compiled netlist + time-wheel settling) and the seed
timed-waveform loop implement the same delay model, so for every design
their :class:`SimulationResult` records must be *byte-identical* — all
four toggle counters, the per-net toggle map, and the primary-output
values — not merely close. This is pinned across every built-in
benchmark, both idle-select conventions, and jittered delays.

The batched kernel (:func:`simulate_batch`) shares the same contract
per configuration: every per-config record of a batched run must equal
a solo ``kernel="reference"`` run of that configuration (a fast chem
smoke here, the full benchmark cross-product slow-marked), and a batch
of one must equal the unbatched event kernel (hypothesis property).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import BENCHMARK_NAMES, benchmark_spec, list_schedule, load_benchmark
from repro.binding import assign_ports, bind_lopass, bind_registers
from repro.fpga import (
    BatchConfig,
    ElaboratedDesign,
    compile_netlist,
    elaborate_datapath,
    random_vectors,
    simulate_batch,
    simulate_design,
)
from repro.errors import SimulationError
from repro.rtl import build_datapath
from repro.techmap import map_netlist

WIDTH = 4
#: Not a multiple of 64, so the tail-lane masking is exercised too.
LANES = 48
SEED = 11

_BUILT = {}


def build_mapped(name):
    """LUT-mapped design + stimulus for one built-in benchmark
    (memoized — the batch tests and the param fixture share builds)."""
    if name in _BUILT:
        return _BUILT[name]
    spec = benchmark_spec(name)
    schedule = list_schedule(load_benchmark(name), spec.constraints)
    registers = bind_registers(schedule)
    ports = assign_ports(schedule.cdfg)
    solution = bind_lopass(schedule, spec.constraints, registers, ports)
    datapath = build_datapath(solution, WIDTH)
    design = elaborate_datapath(datapath)
    mapping = map_netlist(design.netlist, k=4)
    mapped = ElaboratedDesign(
        datapath,
        mapping.netlist,
        design.pad_nets,
        design.register_nets,
        design.fu_nets,
        design.control_nets,
        design.output_nets,
    )
    vectors = random_vectors(
        len(schedule.cdfg.primary_inputs), WIDTH, LANES, seed=SEED
    )
    _BUILT[name] = (mapped, vectors)
    return _BUILT[name]


@pytest.fixture(scope="module", params=BENCHMARK_NAMES)
def mapped_design(request):
    """LUT-mapped design + stimulus for one built-in benchmark."""
    return build_mapped(request.param)


def _n_pads(design):
    return len(design.datapath.cdfg.primary_inputs)


@pytest.mark.parametrize("idle_selects", ["zero", "hold"])
@pytest.mark.parametrize("delay_jitter", [0, 2])
def test_kernels_byte_identical(mapped_design, idle_selects, delay_jitter):
    design, vectors = mapped_design
    event = simulate_design(
        design, vectors, collect_per_net=True,
        idle_selects=idle_selects, delay_jitter=delay_jitter,
    )
    reference = simulate_design(
        design, vectors, collect_per_net=True,
        idle_selects=idle_selects, delay_jitter=delay_jitter,
        kernel="reference",
    )
    # Dataclass equality covers every counter, the per-net map and the
    # per-lane outputs.
    assert event == reference


def test_unknown_kernel_rejected(mapped_design):
    design, vectors = mapped_design
    with pytest.raises(SimulationError):
        simulate_design(design, vectors, kernel="quantum")


def test_compiled_netlist_is_cached(mapped_design):
    design, _ = mapped_design
    first = compile_netlist(design.netlist, 0)
    assert compile_netlist(design.netlist, 0) is first
    # A different delay spread compiles (and caches) separately.
    jittered = compile_netlist(design.netlist, 2)
    assert jittered is not first
    assert compile_netlist(design.netlist, 2) is jittered


def test_compiled_netlist_invalidated_on_mutation(mapped_design):
    design, _ = mapped_design
    netlist = design.netlist
    first = compile_netlist(netlist, 0)
    pi = netlist.add_input()
    try:
        recompiled = compile_netlist(netlist, 0)
        assert recompiled is not first
        assert recompiled.n_nets == first.n_nets + 1
    finally:
        netlist.inputs.remove(pi)
        netlist._sim_compiled.clear()


# ---------------------------------------------------------------------------
# Batched kernel: every per-config record == a solo reference run.
# ---------------------------------------------------------------------------

def _solo_reference(design, config, collect_per_net=True):
    return simulate_design(
        design, config.vectors, collect_per_net=collect_per_net,
        idle_selects=config.idle_selects, delay_jitter=config.delay_jitter,
        kernel="reference",
    )


def test_batch_matches_reference_chem():
    """Tier-1 smoke: a mixed batch (two stimuli, both idle conventions,
    three delay spreads) on chem, each config byte-identical to solo."""
    design, vectors = build_mapped("chem")
    alt = random_vectors(_n_pads(design), WIDTH, LANES, seed=SEED + 3)
    configs = [
        BatchConfig(vectors, "zero", 0),
        BatchConfig(alt, "zero", 2),
        BatchConfig(vectors, "hold", 1),
        BatchConfig(alt, "hold", 0),
    ]
    results = simulate_batch(design, configs, collect_per_net=True)
    assert len(results) == len(configs)
    for config, result in zip(configs, results):
        assert result == _solo_reference(design, config)


def test_batch_mixed_lane_counts():
    """Configs with different lane counts share one packed word; the
    narrow config's block mask must isolate it from its wide sibling."""
    design, vectors = build_mapped("pr")
    narrow = random_vectors(_n_pads(design), WIDTH, 10, seed=SEED + 5)
    configs = [BatchConfig(vectors, "zero", 0), BatchConfig(narrow, "hold", 3)]
    results = simulate_batch(design, configs, collect_per_net=True)
    for config, result in zip(configs, results):
        assert result == _solo_reference(design, config)


@pytest.mark.slow
@pytest.mark.parametrize("idle_selects", ["zero", "hold"])
@pytest.mark.parametrize("delay_jitter", [0, 2])
def test_batch_matches_reference_all_benchmarks(
    mapped_design, idle_selects, delay_jitter
):
    design, vectors = mapped_design
    alt = random_vectors(_n_pads(design), WIDTH, LANES, seed=SEED + 3)
    configs = [
        BatchConfig(vectors, idle_selects, delay_jitter),
        BatchConfig(alt, idle_selects, delay_jitter),
    ]
    results = simulate_batch(design, configs, collect_per_net=True)
    for config, result in zip(configs, results):
        assert result == _solo_reference(design, config)


def test_batch_unknown_kernel_rejected():
    design, vectors = build_mapped("pr")
    with pytest.raises(SimulationError):
        simulate_batch(design, [BatchConfig(vectors)], kernel="quantum")


def test_batch_empty():
    design, _ = build_mapped("pr")
    assert simulate_batch(design, []) == []


@settings(max_examples=12, deadline=None)
@given(
    lanes=st.integers(min_value=1, max_value=70),
    seed=st.integers(min_value=0, max_value=2**16),
    idle_selects=st.sampled_from(["zero", "hold"]),
    delay_jitter=st.integers(min_value=0, max_value=3),
)
def test_batch_of_one_equals_event_kernel(
    lanes, seed, idle_selects, delay_jitter
):
    """Property: a batch of one is the unbatched event kernel."""
    design, _ = build_mapped("pr")
    vectors = random_vectors(_n_pads(design), WIDTH, lanes, seed=seed)
    [batched] = simulate_batch(
        design,
        [BatchConfig(vectors, idle_selects, delay_jitter)],
        collect_per_net=True,
    )
    solo = simulate_design(
        design, vectors, collect_per_net=True,
        idle_selects=idle_selects, delay_jitter=delay_jitter,
    )
    assert batched == solo
