"""Differential pinning: the template-stamped elaborator vs the seed one.

``elab_engine="fast"`` must be a pure speedup — byte-identical
netlists (net names, gate insertion order, truth tables, latches,
BLIF bytes) and identical design maps (pads, register/FU/control/
output nets) versus the seed elaborator kept behind
``elab_engine="reference"``. The paper benchmarks stay in tier-1; the
classic 90-instance corpus cross-product is slow-marked.
"""

import io

import pytest

from repro import BENCHMARK_NAMES, benchmark_spec, load_benchmark
from repro.cdfg.corpus import classic_corpus_names, corpus_instance
from repro.errors import ConfigError
from repro.flow.pipeline import run_binder
from repro.flow.run import FlowConfig, prepare_flow_inputs
from repro.fpga.compile import ELAB_ENGINES, elaborate_design
from repro.netlist.blif import write_blif
from repro.rtl.datapath import build_datapath
from repro.scheduling import list_schedule

#: Every ~15th classic corpus instance: cheap tier-1 sampling across
#: all three families (the full 90 runs slow-marked below).
_CORPUS_SAMPLE = sorted(classic_corpus_names())[::15]


def datapath_for(name: str, width: int = 8):
    try:
        constraints = dict(benchmark_spec(name).constraints)
    except Exception:
        constraints = corpus_instance(name).constraints
    schedule = list_schedule(load_benchmark(name), constraints)
    registers, ports = prepare_flow_inputs(schedule)
    solution = run_binder("lopass", schedule, constraints, registers, ports)
    return build_datapath(solution, width)


def blif_bytes(netlist) -> str:
    stream = io.StringIO()
    write_blif(netlist, stream)
    return stream.getvalue()


def assert_identical_designs(reference, fast) -> None:
    ref_net, fast_net = reference.netlist, fast.netlist
    assert list(ref_net.inputs) == list(fast_net.inputs)
    assert list(ref_net.outputs) == list(fast_net.outputs)
    assert list(ref_net.gates) == list(fast_net.gates)
    for net, gate in ref_net.gates.items():
        other = fast_net.gates[net]
        assert gate.inputs == other.inputs
        assert gate.gate_type == other.gate_type
        assert gate.table.bits == other.table.bits
    assert list(ref_net.latches) == list(fast_net.latches)
    for name, latch in ref_net.latches.items():
        other = fast_net.latches[name]
        assert (latch.data, latch.output, latch.enable) == (
            other.data, other.output, other.enable
        )
    assert blif_bytes(ref_net) == blif_bytes(fast_net)
    assert reference.pad_nets == fast.pad_nets
    assert reference.register_nets == fast.register_nets
    assert reference.fu_nets == fast.fu_nets
    assert reference.control_nets == fast.control_nets
    assert reference.output_nets == fast.output_nets


def assert_engines_agree(name: str, width: int = 8) -> None:
    datapath = datapath_for(name, width)
    reference = elaborate_design(datapath, "reference")
    fast = elaborate_design(datapath, "fast")
    assert_identical_designs(reference, fast)


class TestPaperBenchmarks:
    @pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
    def test_byte_identical(self, bench_name):
        assert_engines_agree(bench_name)

    @pytest.mark.parametrize("width", (4, 12))
    def test_widths(self, width):
        assert_engines_agree("pr", width)


class TestCorpusSample:
    @pytest.mark.parametrize("name", _CORPUS_SAMPLE)
    def test_byte_identical(self, name):
        assert_engines_agree(name)


@pytest.mark.slow
class TestClassicCorpusCrossProduct:
    @pytest.mark.parametrize("name", sorted(classic_corpus_names()))
    def test_byte_identical(self, name):
        assert_engines_agree(name)


class TestDispatch:
    def test_engine_vocabulary(self):
        assert ELAB_ENGINES == ("fast", "reference")

    def test_unknown_engine_raises(self):
        datapath = datapath_for("pr")
        with pytest.raises(ConfigError, match="unknown elab engine"):
            elaborate_design(datapath, "turbo")

    def test_flow_config_validates(self):
        with pytest.raises(ConfigError):
            FlowConfig(elab_engine="turbo")
        assert FlowConfig(elab_engine="reference").elab_engine == "reference"
