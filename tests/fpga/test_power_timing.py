"""Tests for the device model, timing, and power reports."""

import pytest

from repro.fpga.device import CYCLONE_II_LIKE, DeviceModel
from repro.fpga.power import power_report
from repro.fpga.simulate import SimulationResult
from repro.fpga.timing import timing_report
from repro.netlist.gates import GateType, Netlist


def fake_sim(comb=1000, reg=100, pad=10, control=20, lanes=64, steps=4):
    return SimulationResult(
        lanes=lanes,
        steps=steps,
        comb_toggles=comb,
        register_toggles=reg,
        pad_toggles=pad,
        control_toggles=control,
    )


class TestDevice:
    def test_clock_period_monotone_in_depth(self):
        device = CYCLONE_II_LIKE
        periods = [device.clock_period_ns(d) for d in (1, 5, 10, 20)]
        assert periods == sorted(periods)
        assert periods[0] > 0

    def test_paper_range_for_typical_depths(self):
        """Depths of 12-18 levels land in Table 3's 20-27 ns range."""
        device = CYCLONE_II_LIKE
        assert 15 < device.clock_period_ns(12) < 30
        assert 15 < device.clock_period_ns(18) < 30

    def test_switch_energy(self):
        device = DeviceModel(vdd_v=2.0, c_lut_ff=100.0)
        # 0.5 * 100fF * 4V^2 = 2e-13 J.
        assert device.switch_energy_j(100.0) == pytest.approx(2e-13)


class TestTiming:
    def test_depth_from_netlist(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        n1 = netlist.add_simple(GateType.NOT, (a,))
        n2 = netlist.add_simple(GateType.NOT, (n1,))
        netlist.set_output(n2)
        report = timing_report(netlist)
        assert report.depth_levels == 2
        assert report.clock_period_ns == CYCLONE_II_LIKE.clock_period_ns(2)
        assert report.fmax_mhz == pytest.approx(
            1e3 / report.clock_period_ns
        )


class TestPower:
    def test_components_sum(self):
        report = power_report(fake_sim(), sim_clock_ns=40.0, n_nets=100)
        assert report.dynamic_power_mw == pytest.approx(
            report.comb_power_mw
            + report.register_power_mw
            + report.io_power_mw
        )

    def test_power_scales_with_toggles(self):
        low = power_report(fake_sim(comb=1000), 40.0, n_nets=10)
        high = power_report(fake_sim(comb=2000), 40.0, n_nets=10)
        assert high.comb_power_mw == pytest.approx(2 * low.comb_power_mw)

    def test_power_inverse_in_clock(self):
        fast = power_report(fake_sim(), 20.0, n_nets=10)
        slow = power_report(fake_sim(), 40.0, n_nets=10)
        assert fast.dynamic_power_mw == pytest.approx(
            2 * slow.dynamic_power_mw
        )

    def test_toggle_rate_per_net(self):
        sim = fake_sim(comb=1000, reg=100)
        per10 = power_report(sim, 40.0, n_nets=10)
        per100 = power_report(sim, 40.0, n_nets=100)
        assert per10.toggle_rate_mhz == pytest.approx(
            10 * per100.toggle_rate_mhz
        )

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            power_report(fake_sim(), 0.0)

    def test_io_power_uses_pad_capacitance(self):
        device = CYCLONE_II_LIKE
        report = power_report(
            fake_sim(comb=0, reg=0, pad=100, control=0), 40.0, device
        )
        assert report.io_power_mw > 0
        assert report.comb_power_mw == 0.0
