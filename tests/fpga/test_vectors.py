"""Tests for vector packing and stimulus generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.fpga.vectors import (
    VectorSet,
    broadcast,
    n_words,
    pack_values,
    popcount,
    random_vectors,
    unpack_values,
)


class TestPacking:
    def test_n_words(self):
        assert n_words(1) == 1
        assert n_words(64) == 1
        assert n_words(65) == 2
        with pytest.raises(SimulationError):
            n_words(0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_pack_unpack_round_trip(self, bits):
        assert unpack_values(pack_values(bits), len(bits)) == bits

    def test_broadcast_true_masks_tail(self):
        words = broadcast(True, 70)
        assert unpack_values(words, 70) == [True] * 70
        # Bits past lane 70 must be clear.
        assert int(words[1]) >> 6 == 0

    def test_broadcast_false(self):
        assert not broadcast(False, 100).any()

    def test_popcount(self):
        assert popcount(pack_values([True, False, True, True])) == 3
        assert popcount(np.zeros(3, dtype=np.uint64)) == 0


class TestRandomVectors:
    def test_shape(self):
        vectors = random_vectors(n_pads=3, width=4, lanes=100, seed=1)
        assert vectors.lanes == 100
        assert set(vectors.pads) == {0, 1, 2}
        assert len(vectors.pads[0]) == 4
        assert vectors.pads[0][0].shape == (2,)

    def test_deterministic(self):
        a = random_vectors(2, 4, 50, seed=9)
        b = random_vectors(2, 4, 50, seed=9)
        for pad in a.pads:
            for bit in range(4):
                assert (a.pads[pad][bit] == b.pads[pad][bit]).all()

    def test_seeds_differ(self):
        a = random_vectors(2, 8, 128, seed=1)
        b = random_vectors(2, 8, 128, seed=2)
        assert any(
            (a.pads[p][k] != b.pads[p][k]).any()
            for p in a.pads
            for k in range(8)
        )

    def test_lane_value_consistency(self):
        vectors = random_vectors(1, 8, 10, seed=3)
        for lane in range(10):
            value = vectors.lane_value(0, lane)
            bits = [
                unpack_values(vectors.pads[0][k], 10)[lane] for k in range(8)
            ]
            expected = sum(1 << k for k, bit in enumerate(bits) if bit)
            assert value == expected

    def test_tail_lanes_masked(self):
        vectors = random_vectors(1, 4, 70, seed=4)
        for bit in range(4):
            assert int(vectors.pads[0][bit][1]) >> 6 == 0

    def test_values_roughly_uniform(self):
        vectors = random_vectors(1, 1, 4096, seed=5)
        ones = popcount(vectors.pads[0][0])
        assert 1700 < ones < 2400
