"""Tests for datapath elaboration and gate-level simulation.

The headline check is end-to-end functional correctness: the simulated
hardware's primary outputs must match the CDFG's modular arithmetic for
every lane, on both the raw gate netlist and the LUT-mapped netlist.
"""

import pytest

from repro.binding import HLPowerConfig, bind_hlpower, bind_lopass
from repro.cdfg import Schedule, benchmark_spec, load_benchmark
from repro.fpga import (
    ElaboratedDesign,
    elaborate_datapath,
    random_vectors,
    simulate_design,
)
from repro.fpga.simulate import golden_outputs
from repro.rtl import build_datapath
from repro.scheduling import list_schedule
from repro.techmap import map_netlist


@pytest.fixture()
def figure1_design(figure1_schedule, sa_table):
    solution = bind_hlpower(
        figure1_schedule,
        {"add": 2, "mult": 1},
        config=HLPowerConfig(sa_table=sa_table),
    )
    datapath = build_datapath(solution, width=4)
    return elaborate_datapath(datapath)


def mapped_copy(design: ElaboratedDesign) -> ElaboratedDesign:
    mapping = map_netlist(design.netlist, k=4)
    return ElaboratedDesign(
        design.datapath,
        mapping.netlist,
        design.pad_nets,
        design.register_nets,
        design.fu_nets,
        design.control_nets,
        design.output_nets,
    )


class TestElaboration:
    def test_netlist_validates(self, figure1_design):
        figure1_design.netlist.validate()

    def test_has_pads_controls_latches(self, figure1_design):
        netlist = figure1_design.netlist
        assert figure1_design.pad_nets
        assert figure1_design.control_nets
        width = figure1_design.width
        expected_latches = (
            len(figure1_design.register_nets) * width
        )
        assert netlist.num_latches() == expected_latches

    def test_register_nets_are_latch_outputs(self, figure1_design):
        for nets in figure1_design.register_nets.values():
            for net in nets:
                assert net in figure1_design.netlist.latches

    def test_control_nets_are_primary_inputs(self, figure1_design):
        inputs = set(figure1_design.netlist.inputs)
        for nets in figure1_design.control_nets.values():
            for net in nets:
                assert net in inputs


class TestFunctionalCorrectness:
    def test_figure1_gate_level(self, figure1_design):
        vectors = random_vectors(
            len(figure1_design.pad_nets), 4, lanes=64, seed=2
        )
        sim = simulate_design(figure1_design, vectors)
        assert sim.outputs == golden_outputs(figure1_design, vectors)

    def test_figure1_mapped(self, figure1_design):
        mapped = mapped_copy(figure1_design)
        vectors = random_vectors(len(mapped.pad_nets), 4, lanes=64, seed=3)
        sim = simulate_design(mapped, vectors)
        assert sim.outputs == golden_outputs(mapped, vectors)

    def test_figure1_mapped_hold_policy(self, figure1_design):
        mapped = mapped_copy(figure1_design)
        vectors = random_vectors(len(mapped.pad_nets), 4, lanes=32, seed=4)
        sim = simulate_design(mapped, vectors, idle_selects="hold")
        assert sim.outputs == golden_outputs(mapped, vectors)

    def test_figure1_with_delay_jitter(self, figure1_design):
        """Unit-delay vs jittered delays must agree on final values
        (only transient waveforms differ)."""
        vectors = random_vectors(
            len(figure1_design.pad_nets), 4, lanes=32, seed=5
        )
        flat = simulate_design(figure1_design, vectors, delay_jitter=0)
        jittered = simulate_design(figure1_design, vectors, delay_jitter=3)
        assert flat.outputs == jittered.outputs

    @pytest.mark.parametrize("binder", ["hlpower", "lopass"])
    def test_benchmark_pr_mapped(self, sa_table, binder):
        spec = benchmark_spec("pr")
        schedule = list_schedule(load_benchmark("pr"), spec.constraints)
        if binder == "hlpower":
            solution = bind_hlpower(
                schedule, spec.constraints,
                config=HLPowerConfig(sa_table=sa_table),
            )
        else:
            solution = bind_lopass(schedule, spec.constraints)
        datapath = build_datapath(solution, width=6)
        design = mapped_copy(elaborate_datapath(datapath))
        vectors = random_vectors(
            len(design.pad_nets), 6, lanes=48, seed=6
        )
        sim = simulate_design(design, vectors)
        assert sim.outputs == golden_outputs(design, vectors)


class TestToggleCounting:
    def test_toggle_counters_nonnegative_and_consistent(self, figure1_design):
        vectors = random_vectors(
            len(figure1_design.pad_nets), 4, lanes=64, seed=7
        )
        sim = simulate_design(figure1_design, vectors, collect_per_net=True)
        assert sim.comb_toggles > 0
        assert sim.register_toggles > 0
        assert sim.total_toggles == (
            sim.comb_toggles
            + sim.register_toggles
            + sim.pad_toggles
            + sim.control_toggles
        )
        assert sum(sim.per_net.values()) == sim.total_toggles

    def test_constant_stimulus_minimizes_toggles(self, figure1_design):
        """All-zero vectors: pads never toggle, and arithmetic on zeros
        keeps the datapath almost silent."""
        zero_vectors = random_vectors(
            len(figure1_design.pad_nets), 4, lanes=16, seed=8
        )
        for pad in zero_vectors.pads.values():
            for words in pad:
                words[:] = 0
        random_sim = simulate_design(
            figure1_design,
            random_vectors(len(figure1_design.pad_nets), 4, 16, seed=8),
        )
        zero_sim = simulate_design(figure1_design, zero_vectors)
        assert zero_sim.pad_toggles == 0
        assert zero_sim.comb_toggles < random_sim.comb_toggles

    def test_glitches_counted_beyond_functional_minimum(self, figure1_design):
        """The unit-delay simulation of ripple arithmetic must observe
        more transitions than a zero-delay functional simulation would
        (that surplus is exactly the glitch activity)."""
        vectors = random_vectors(
            len(figure1_design.pad_nets), 4, lanes=64, seed=9
        )
        sim = simulate_design(figure1_design, vectors)
        # Zero-delay lower bound: each net settles at most once per
        # step per lane... instead compare against a re-run counting
        # only final-value changes, approximated by re-simulating and
        # summing final-state hamming distances per step. The glitchy
        # count must be at least that.
        assert sim.comb_toggles > 0

    def test_jitter_increases_or_keeps_toggles(self, figure1_design):
        vectors = random_vectors(
            len(figure1_design.pad_nets), 4, lanes=64, seed=10
        )
        flat = simulate_design(figure1_design, vectors, delay_jitter=0)
        jittered = simulate_design(figure1_design, vectors, delay_jitter=3)
        # More delay spread cannot reduce the final-value transitions;
        # in practice it adds glitches on reconvergent paths.
        assert jittered.comb_toggles >= flat.comb_toggles * 0.9
