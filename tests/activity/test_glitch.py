"""Tests for the unit-delay glitch-aware waveform propagation."""

import pytest

from repro.activity.glitch import (
    GlitchWaveform,
    propagate_waveforms,
    source_waveform,
)
from repro.netlist.gates import GateType, Netlist, TruthTable


class TestWaveform:
    def test_source_waveform_shape(self):
        wave = source_waveform(0.5, 0.5)
        assert wave.switch_times() == [0]
        assert wave.total() == pytest.approx(0.5)
        assert wave.glitch() == 0.0

    def test_quiescent_source(self):
        wave = source_waveform(0.5, 0.0)
        assert wave.steps == {}
        assert wave.total() == 0.0

    def test_activity_clamped_to_probability(self):
        wave = source_waveform(0.1, 0.9)
        assert wave.total() == pytest.approx(0.2)

    def test_functional_vs_glitch_split(self):
        wave = GlitchWaveform(0.5, {1: 0.2, 2: 0.3, 3: 0.4})
        assert wave.depth == 3
        assert wave.functional() == pytest.approx(0.4)
        assert wave.glitch() == pytest.approx(0.5)
        assert wave.total() == pytest.approx(0.9)


class TestPropagation:
    def test_balanced_inputs_no_glitch(self):
        # Both XOR inputs arrive at time 0, so the output can only
        # switch at time 1: one (functional) transition, no glitches.
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        y = netlist.add_simple(GateType.XOR, (a, b), "y")
        netlist.set_output(y)
        waves = propagate_waveforms(netlist)
        assert waves["y"].switch_times() == [1]
        assert waves["y"].glitch() == 0.0

    def test_unbalanced_paths_create_glitches(self):
        # y = a XOR not(a-delayed-through-two-inverters): input b of the
        # final gate arrives later, creating an early spurious switch.
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        n1 = netlist.add_simple(GateType.NOT, (b,))
        n2 = netlist.add_simple(GateType.NOT, (n1,))
        y = netlist.add_simple(GateType.XOR, (a, n2), "y")
        netlist.set_output(y)
        waves = propagate_waveforms(netlist)
        assert waves["y"].switch_times() == [1, 3]
        assert waves["y"].glitch() > 0.0
        assert waves["y"].functional() > 0.0

    def test_effective_sa_exceeds_single_transition(self):
        # The unbalanced structure's total SA counts both the glitch
        # and the functional transition.
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        n1 = netlist.add_simple(GateType.NOT, (b,))
        y = netlist.add_simple(GateType.AND, (a, n1))
        z = netlist.add_simple(GateType.XOR, (y, b), "z")
        netlist.set_output(z)
        waves = propagate_waveforms(netlist)
        assert waves["z"].total() > waves["z"].functional()

    def test_quiescent_inputs_produce_no_activity(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        y = netlist.add_simple(GateType.AND, (a, b), "y")
        netlist.set_output(y)
        waves = propagate_waveforms(
            netlist, input_activities={"a": 0.0, "b": 0.0}
        )
        assert waves["y"].total() == 0.0

    def test_constant_gate_waveform(self):
        netlist = Netlist()
        one = netlist.add_const(True, "one")
        netlist.set_output(one)
        waves = propagate_waveforms(netlist)
        assert waves["one"].probability == 1.0
        assert waves["one"].total() == 0.0

    def test_depth_tracks_longest_path(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        current = a
        for _ in range(4):
            current = netlist.add_simple(GateType.NOT, (current,))
        netlist.set_output(current)
        waves = propagate_waveforms(netlist)
        assert waves[current].depth == 4

    def test_zero_activity_functional_transition(self):
        # Regression: the functional transition must be pinned to the
        # *structural* depth, even when its activity is zero and the
        # step is therefore absent from the recorded waveform. Here the
        # output gate structurally depends on a depth-2 fanin (so its
        # depth is 3), but its truth table ignores that input: the only
        # recorded step is the early (glitch) one at time 1, which the
        # old max-of-steps depth misreported as the functional
        # transition.
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        n1 = netlist.add_simple(GateType.NOT, (b,))
        n2 = netlist.add_simple(GateType.NOT, (n1,))
        table = TruthTable.from_function(2, lambda v: v[0])  # ignores n2
        netlist.add_gate(table, (a, n2), "y")
        netlist.set_output("y")
        waves = propagate_waveforms(netlist)
        wave = waves["y"]
        assert wave.depth == 3  # structural, through the inverter chain
        assert wave.switch_times() == [1]  # only the glitch step
        assert wave.total() > 0.0
        assert wave.functional() == 0.0
        assert wave.glitch() == pytest.approx(wave.total())

    def test_latch_outputs_are_sources(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        q = netlist.add_latch(a, "q")
        y = netlist.add_simple(GateType.NOT, (q,), "y")
        netlist.set_output(y)
        waves = propagate_waveforms(netlist, input_activities={"q": 0.25})
        assert waves["y"].total() == pytest.approx(0.25)

    def test_wide_gate_fallback(self):
        netlist = Netlist()
        inputs = [netlist.add_input(f"i{k}") for k in range(8)]
        y = netlist.add_simple(GateType.AND, tuple(inputs), "y")
        netlist.set_output(y)
        waves = propagate_waveforms(netlist)
        # Fallback puts a single transition at the node's depth.
        assert waves["y"].switch_times() in ([], [1])
        assert waves["y"].glitch() == 0.0

    def test_glitch_probability_conservation(self):
        # Per-step activities must each respect the probability bound.
        from repro.netlist.library import build_adder

        netlist = build_adder(4)
        waves = propagate_waveforms(netlist)
        for wave in waves.values():
            bound = 2.0 * min(wave.probability, 1 - wave.probability)
            for step_activity in wave.steps.values():
                assert step_activity <= bound + 1e-9
