"""Tests for the netlist-level SA estimation driver."""

import pytest

from repro.activity import estimate_switching_activity
from repro.netlist.gates import GateType, Netlist
from repro.netlist.library import build_adder, build_multiplier, build_partial_datapath
from repro.netlist.transform import clean


class TestTotals:
    def test_total_is_sum_of_gate_activities(self):
        netlist = build_adder(3)
        report = estimate_switching_activity(netlist)
        gate_sum = sum(
            report.per_net[net] for net in netlist.gates
        )
        assert report.total == pytest.approx(gate_sum)

    def test_functional_plus_glitch_equals_total(self):
        netlist = build_adder(4)
        report = estimate_switching_activity(netlist)
        assert report.functional + report.glitch == pytest.approx(report.total)

    def test_glitch_fraction_in_unit_interval(self):
        netlist = build_multiplier(3)
        report = estimate_switching_activity(netlist)
        assert 0.0 <= report.glitch_fraction <= 1.0

    def test_sources_excluded_by_default(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        y = netlist.add_simple(GateType.NOT, (a,), "y")
        netlist.set_output(y)
        excl = estimate_switching_activity(netlist)
        incl = estimate_switching_activity(netlist, include_sources=True)
        assert incl.total == pytest.approx(excl.total + 0.5)


class TestGlitchVsZeroDelay:
    def test_zero_delay_has_no_glitch_component(self):
        netlist = build_adder(4)
        report = estimate_switching_activity(netlist, glitch_aware=False)
        assert report.glitch == pytest.approx(0.0)

    def test_glitch_aware_sees_more_activity_on_ripple_logic(self):
        # Ripple carry chains produce substantial glitching under the
        # unit-delay model; the zero-delay model misses all of it.
        netlist = build_adder(8)
        glitchy = estimate_switching_activity(netlist, glitch_aware=True)
        flat = estimate_switching_activity(netlist, glitch_aware=False)
        assert glitchy.total > flat.total

    def test_single_gate_models_agree(self):
        # Without path-delay imbalance the two models coincide.
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        y = netlist.add_simple(GateType.AND, (a, b), "y")
        netlist.set_output(y)
        glitchy = estimate_switching_activity(netlist)
        flat = estimate_switching_activity(netlist, glitch_aware=False)
        assert glitchy.total == pytest.approx(flat.total)


class TestInputOverrides:
    def test_zero_activity_inputs_zero_total(self):
        netlist = build_adder(3)
        report = estimate_switching_activity(
            netlist, input_activities={pi: 0.0 for pi in netlist.inputs}
        )
        assert report.total == pytest.approx(0.0)

    def test_activity_scales_monotonically(self):
        netlist = build_adder(3)
        low = estimate_switching_activity(
            netlist, input_activities={pi: 0.1 for pi in netlist.inputs}
        )
        high = estimate_switching_activity(
            netlist, input_activities={pi: 0.5 for pi in netlist.inputs}
        )
        assert high.total > low.total

    def test_partial_datapath_mux_size_monotonicity(self):
        """Bigger input muxes mean higher estimated SA (Section 5.2.2)."""
        totals = []
        for size in (1, 3, 6):
            netlist = build_partial_datapath("add", size, size, 4)
            clean(netlist)
            totals.append(estimate_switching_activity(netlist).total)
        assert totals[0] < totals[1] < totals[2]

    def test_balanced_muxes_cheaper_than_skewed(self):
        """The muxDiff intuition: (4,4) glitches less than (1,7)."""
        balanced = build_partial_datapath("add", 4, 4, 4)
        skewed = build_partial_datapath("add", 1, 7, 4)
        clean(balanced)
        clean(skewed)
        sa_balanced = estimate_switching_activity(balanced).total
        sa_skewed = estimate_switching_activity(skewed).total
        assert sa_balanced < sa_skewed
