"""Tests for transition density and simultaneous switching."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EstimationError
from repro.activity.transition import (
    activity_bound,
    clamp_activity,
    held_distribution,
    joint_input_matrix,
    mixed_joint_matrix,
    najm_density,
    pair_distribution,
    switching_activity,
)
from repro.netlist.gates import GateType, TruthTable

probs = st.floats(0.05, 0.95, allow_nan=False)


def feasible_activity(draw, prob):
    return draw(st.floats(0.0, activity_bound(prob), allow_nan=False))


class TestPairDistribution:
    def test_rows_sum_to_marginals(self):
        joint = pair_distribution(0.3, 0.2)
        # Column/row sums give P(x=0), P(x=1) at each instant.
        assert joint.sum() == pytest.approx(1.0)
        assert joint[1].sum() == pytest.approx(0.3)
        assert joint[:, 1].sum() == pytest.approx(0.3)

    def test_off_diagonal_is_half_activity(self):
        joint = pair_distribution(0.5, 0.4)
        assert joint[0, 1] == pytest.approx(0.2)
        assert joint[1, 0] == pytest.approx(0.2)

    def test_infeasible_activity_rejected(self):
        with pytest.raises(EstimationError):
            pair_distribution(0.1, 0.5)  # bound is 0.2

    def test_negative_activity_rejected(self):
        with pytest.raises(EstimationError):
            pair_distribution(0.5, -0.1)

    def test_held_distribution_is_diagonal(self):
        joint = held_distribution(0.7)
        assert joint[0, 1] == 0.0 and joint[1, 0] == 0.0
        assert joint[1, 1] == pytest.approx(0.7)


class TestSwitchingActivity:
    def test_buffer_passes_activity(self):
        table = TruthTable.for_type(GateType.BUF, 1)
        assert switching_activity(table, [0.5], [0.3]) == pytest.approx(0.3)

    def test_inverter_passes_activity(self):
        table = TruthTable.for_type(GateType.NOT, 1)
        assert switching_activity(table, [0.5], [0.3]) == pytest.approx(0.3)

    def test_xor_with_simultaneous_switching(self):
        # Both inputs always switching together: XOR never switches.
        table = TruthTable.for_type(GateType.XOR, 2)
        result = switching_activity(table, [0.5, 0.5], [1.0, 1.0])
        assert result == pytest.approx(0.0)

    def test_xor_single_switching_input(self):
        table = TruthTable.for_type(GateType.XOR, 2)
        result = switching_activity(table, [0.5, 0.5], [0.5, 0.0])
        assert result == pytest.approx(0.5)

    def test_and_uniform(self):
        # s(ab) with P=0.5, s=0.5 for both, independent switching.
        # Each input's joint law is uniform over {0,1}^2, so
        # P(y(t)=1, y(t+T)=1) = (1/4)^2 per input pair = 1/16, and
        # s(y) = 2 (P(y) - 1/16) = 2 (1/4 - 1/16) = 3/8 (Equation (2)).
        table = TruthTable.for_type(GateType.AND, 2)
        result = switching_activity(table, [0.5, 0.5], [0.5, 0.5])
        assert result == pytest.approx(0.375)

    def test_constant_gate_never_switches(self):
        assert switching_activity(TruthTable.constant(True), [], []) == 0.0

    def test_najm_overestimates_simultaneous(self):
        # Najm's formula counts each input independently, so for XOR
        # with both inputs switching it reports 1.0 vs the true 0.
        table = TruthTable.for_type(GateType.XOR, 2)
        exact = switching_activity(table, [0.5, 0.5], [1.0, 1.0])
        najm = najm_density(table, [0.5, 0.5], [1.0, 1.0])
        assert najm > exact

    def test_najm_matches_exact_for_single_switching_input(self):
        table = TruthTable.for_type(GateType.AND, 3)
        exact = switching_activity(table, [0.5] * 3, [0.4, 0.0, 0.0])
        najm = najm_density(table, [0.5] * 3, [0.4, 0.0, 0.0])
        assert najm == pytest.approx(exact)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(0, 15),
        st.tuples(probs, probs),
        st.floats(0.0, 0.1),
        st.floats(0.0, 0.1),
    )
    def test_activity_within_bound(self, bits, input_probs, s1, s2):
        table = TruthTable(2, bits)
        result = switching_activity(table, list(input_probs), [s1, s2])
        assert -1e-9 <= result <= 1.0 + 1e-9

    def test_equation_2_identity(self):
        # s(y) = 2 (P(y) - P(y(t) y(t+T))) — verify against the direct
        # pair-space sum for an arbitrary function.
        table = TruthTable.from_function(
            3, lambda v: v[0] and (v[1] or not v[2])
        )
        input_probs = [0.3, 0.6, 0.5]
        activities = [0.2, 0.3, 0.4]
        matrix = joint_input_matrix(3, input_probs, activities)
        column = np.array(table.output_column())
        p_y = matrix[np.ix_(column, column)].sum() + 0.0
        # P(y at both instants):
        p_both = matrix[np.outer(column, column)].sum()
        from repro.activity.probability import gate_output_probability

        s_direct = switching_activity(table, input_probs, activities)
        assert s_direct == pytest.approx(
            2 * (gate_output_probability(table, input_probs) - p_both)
        )


class TestHelpers:
    def test_activity_bound_symmetry(self):
        assert activity_bound(0.3) == pytest.approx(activity_bound(0.7))
        assert activity_bound(0.5) == 1.0
        assert activity_bound(0.0) == 0.0

    def test_clamp(self):
        assert clamp_activity(0.5, 1.5) == 1.0
        assert clamp_activity(0.1, 0.5) == pytest.approx(0.2)
        assert clamp_activity(0.5, -0.1) == 0.0

    def test_mixed_joint_matrix_matches_uniform(self):
        uniform = joint_input_matrix(2, [0.4, 0.6], [0.2, 0.3])
        mixed = mixed_joint_matrix(
            2, [pair_distribution(0.4, 0.2), pair_distribution(0.6, 0.3)]
        )
        assert np.allclose(uniform, mixed)

    def test_wide_gate_rejected_in_exact_path(self):
        with pytest.raises(EstimationError):
            joint_input_matrix(7, [0.5] * 7, [0.5] * 7)
