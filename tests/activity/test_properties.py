"""Seeded property-style tests for the activity stack.

Random truth tables and random netlists, checked against the model's
structural invariants rather than point values:

* switching activities are probabilities of output transitions, so
  ``0 <= sa <= activity_bound(P(y))`` (Equation 2 can never exceed the
  feasible bound for the output's signal probability);
* Najm's transition density (Equation 1) ignores first-order input
  correlation cancellation, so it upper-bounds the exact pairwise
  computation — with equality for single-input gates, where there is
  nothing to cancel;
* the glitch decomposition always satisfies ``total = functional +
  glitch`` with ``glitch_fraction`` in ``[0, 1]``.
"""

import random

import pytest

from repro.activity import estimate_switching_activity
from repro.activity.probability import (
    gate_output_probability,
    propagate_probabilities,
)
from repro.activity.transition import (
    activity_bound,
    clamp_activity,
    najm_density,
    switching_activity,
)
from repro.netlist.gates import Netlist, TruthTable

EPS = 1e-9


def random_table(rng: random.Random, n_inputs: int) -> TruthTable:
    return TruthTable(n_inputs, rng.getrandbits(1 << n_inputs))


def random_stimulus(rng: random.Random, n_inputs: int):
    """Random (probability, feasible activity) per input."""
    probs = [rng.random() for _ in range(n_inputs)]
    activities = [
        clamp_activity(p, rng.random() * activity_bound(p)) for p in probs
    ]
    return probs, activities


def random_netlist(
    rng: random.Random, n_inputs: int = 4, n_gates: int = 14
) -> Netlist:
    """A random combinational DAG over random truth tables."""
    netlist = Netlist("random")
    nets = [netlist.add_input() for _ in range(n_inputs)]
    for _ in range(n_gates):
        arity = rng.randint(1, min(3, len(nets)))
        inputs = rng.sample(nets, arity)
        nets.append(netlist.add_gate(random_table(rng, arity), inputs))
    for net in nets[-3:]:
        netlist.set_output(net)
    return netlist


@pytest.mark.parametrize("seed", range(5))
class TestGateInvariants:
    def test_sa_within_feasible_bound(self, seed):
        rng = random.Random(seed)
        for _ in range(60):
            n = rng.randint(1, 4)
            table = random_table(rng, n)
            probs, activities = random_stimulus(rng, n)
            sa = switching_activity(table, probs, activities)
            out_prob = gate_output_probability(table, probs)
            assert 0.0 - EPS <= sa <= activity_bound(out_prob) + EPS
            # Clamping such a value is the identity.
            assert clamp_activity(out_prob, sa) == pytest.approx(
                min(max(sa, 0.0), activity_bound(out_prob))
            )

    def test_najm_density_bounds_exact_activity(self, seed):
        rng = random.Random(100 + seed)
        for _ in range(60):
            n = rng.randint(2, 4)
            table = random_table(rng, n)
            probs, activities = random_stimulus(rng, n)
            exact = switching_activity(table, probs, activities)
            density = najm_density(table, probs, activities)
            assert density + EPS >= exact
            assert density >= -EPS

    def test_najm_density_exact_for_single_input(self, seed):
        rng = random.Random(200 + seed)
        for _ in range(40):
            table = random_table(rng, 1)
            probs, activities = random_stimulus(rng, 1)
            exact = switching_activity(table, probs, activities)
            density = najm_density(table, probs, activities)
            assert density == pytest.approx(exact, abs=1e-12)

    def test_zero_activity_inputs_cannot_switch_output(self, seed):
        rng = random.Random(300 + seed)
        for _ in range(20):
            n = rng.randint(1, 4)
            table = random_table(rng, n)
            probs = [rng.random() for _ in range(n)]
            assert switching_activity(table, probs, [0.0] * n) == (
                pytest.approx(0.0, abs=EPS)
            )
            assert najm_density(table, probs, [0.0] * n) == (
                pytest.approx(0.0, abs=EPS)
            )


@pytest.mark.parametrize("seed", range(5))
class TestNetlistInvariants:
    def test_per_net_activity_within_bounds(self, seed):
        rng = random.Random(400 + seed)
        netlist = random_netlist(rng)
        report = estimate_switching_activity(netlist, glitch_aware=False)
        probs = propagate_probabilities(netlist)
        for net, sa in report.per_net.items():
            assert sa >= -EPS, net
            assert sa <= activity_bound(probs[net]) + EPS, net

    def test_glitch_decomposition(self, seed):
        rng = random.Random(500 + seed)
        netlist = random_netlist(rng)
        report = estimate_switching_activity(netlist, glitch_aware=True)
        assert report.total >= -EPS
        assert report.functional >= -EPS
        assert report.glitch >= -EPS
        assert report.total == pytest.approx(
            report.functional + report.glitch
        )
        assert 0.0 <= report.glitch_fraction <= 1.0

    def test_glitch_aware_never_below_zero_delay_total(self, seed):
        """Glitches only add transitions on top of the functional ones."""
        rng = random.Random(600 + seed)
        netlist = random_netlist(rng)
        aware = estimate_switching_activity(netlist, glitch_aware=True)
        assert aware.total + EPS >= aware.functional
