"""Tests for signal probability propagation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EstimationError
from repro.activity.probability import (
    gate_output_probability,
    minterm_probabilities,
    propagate_probabilities,
)
from repro.netlist.gates import GateType, Netlist, TruthTable

probs = st.floats(0.0, 1.0, allow_nan=False)


class TestMintermProbabilities:
    def test_uniform_inputs(self):
        weights = minterm_probabilities(2, [0.5, 0.5])
        assert weights.tolist() == [0.25] * 4

    def test_biased_input(self):
        weights = minterm_probabilities(1, [0.9])
        assert weights[0] == pytest.approx(0.1)
        assert weights[1] == pytest.approx(0.9)

    def test_sums_to_one(self):
        weights = minterm_probabilities(3, [0.2, 0.7, 0.4])
        assert weights.sum() == pytest.approx(1.0)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            minterm_probabilities(2, [0.5])

    def test_out_of_range_rejected(self):
        with pytest.raises(EstimationError):
            minterm_probabilities(1, [1.5])


class TestGateProbability:
    def test_and_gate(self):
        table = TruthTable.for_type(GateType.AND, 2)
        assert gate_output_probability(table, [0.5, 0.5]) == pytest.approx(0.25)

    def test_or_gate(self):
        table = TruthTable.for_type(GateType.OR, 2)
        assert gate_output_probability(table, [0.5, 0.5]) == pytest.approx(0.75)

    def test_xor_gate_biased(self):
        table = TruthTable.for_type(GateType.XOR, 2)
        # P(xor) = p(1-q) + q(1-p).
        assert gate_output_probability(table, [0.3, 0.8]) == pytest.approx(
            0.3 * 0.2 + 0.8 * 0.7
        )

    def test_not_gate(self):
        table = TruthTable.for_type(GateType.NOT, 1)
        assert gate_output_probability(table, [0.25]) == pytest.approx(0.75)

    @given(probs, probs)
    def test_and_formula(self, p, q):
        table = TruthTable.for_type(GateType.AND, 2)
        assert gate_output_probability(table, [p, q]) == pytest.approx(p * q)

    @given(st.integers(0, 2 ** 8 - 1), probs, probs, probs)
    def test_result_in_unit_interval(self, bits, p1, p2, p3):
        table = TruthTable(3, bits)
        result = gate_output_probability(table, [p1, p2, p3])
        assert -1e-9 <= result <= 1 + 1e-9


class TestPropagation:
    def test_default_inputs_are_half(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        y = netlist.add_simple(GateType.NOT, (a,), "y")
        netlist.set_output(y)
        result = propagate_probabilities(netlist)
        assert result["a"] == 0.5
        assert result["y"] == pytest.approx(0.5)

    def test_override_per_input(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        y = netlist.add_simple(GateType.AND, (a, b), "y")
        netlist.set_output(y)
        result = propagate_probabilities(netlist, {"a": 1.0, "b": 0.25})
        assert result["y"] == pytest.approx(0.25)

    def test_chain_of_ands_decays(self):
        netlist = Netlist()
        current = netlist.add_input("a")
        for _ in range(3):
            other = netlist.add_input()
            current = netlist.add_simple(GateType.AND, (current, other))
        netlist.set_output(current)
        result = propagate_probabilities(netlist)
        assert result[current] == pytest.approx(0.5 ** 4)

    def test_latch_output_is_source(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        q = netlist.add_latch(a, "q")
        y = netlist.add_simple(GateType.NOT, (q,), "y")
        netlist.set_output(y)
        result = propagate_probabilities(netlist, {"q": 0.9})
        assert result["y"] == pytest.approx(0.1)

    def test_reconvergence_uses_independence(self):
        # y = a AND a is really a, but the independence assumption gives
        # P(y) = P(a)^2 — the documented approximation.
        netlist = Netlist()
        a = netlist.add_input("a")
        y = netlist.add_simple(GateType.AND, (a, a), "y")
        netlist.set_output(y)
        result = propagate_probabilities(netlist, {"a": 0.5})
        assert result["y"] == pytest.approx(0.25)
