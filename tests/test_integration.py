"""Cross-module integration and end-to-end property tests.

The strongest invariant this library can offer: for *any* generated
CDFG, any feasible constraint, and either binder, the synthesized
hardware — datapath, gate elaboration, LUT mapping, and unit-delay
simulation — computes exactly the CDFG's modular arithmetic on every
random vector.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.binding import HLPowerConfig, bind_hlpower, bind_lopass
from repro.binding.sa_table import SATable, SATableConfig
from repro.cdfg.generate import GraphProfile, generate_cdfg
from repro.fpga import (
    ElaboratedDesign,
    elaborate_datapath,
    random_vectors,
    simulate_design,
)
from repro.fpga.simulate import golden_outputs
from repro.rtl import build_datapath, build_controller, emit_vhdl, mux_report
from repro.scheduling import list_schedule
from repro.techmap import map_netlist

_TABLE = SATable(SATableConfig(width=3))


def run_pipeline(cdfg, constraints, binder, width=4, lanes=16, seed=0):
    schedule = list_schedule(cdfg, constraints)
    if binder == "hlpower":
        solution = bind_hlpower(
            schedule, constraints, config=HLPowerConfig(sa_table=_TABLE)
        )
    else:
        solution = bind_lopass(schedule, constraints)
    solution.validate()
    datapath = build_datapath(solution, width)
    design = elaborate_datapath(datapath)
    mapping = map_netlist(design.netlist, k=4)
    mapped = ElaboratedDesign(
        datapath, mapping.netlist, design.pad_nets, design.register_nets,
        design.fu_nets, design.control_nets, design.output_nets,
    )
    vectors = random_vectors(len(design.pad_nets), width, lanes, seed)
    sim = simulate_design(mapped, vectors)
    return solution, mapped, sim, golden_outputs(mapped, vectors)


@settings(max_examples=8, deadline=None)
@given(
    st.integers(0, 10 ** 4),
    st.sampled_from(["hlpower", "lopass"]),
    st.integers(1, 3),
    st.integers(1, 3),
)
def test_any_random_cdfg_synthesizes_correctly(seed, binder, adders, mults):
    profile = GraphProfile("e2e", 4, 3, 9, 6)
    cdfg = generate_cdfg(profile, seed=seed)
    constraints = {"add": adders, "mult": mults}
    schedule = list_schedule(cdfg, constraints)
    # Densest step may be below the constraint; binder must still work.
    solution, mapped, sim, golden = run_pipeline(
        cdfg, constraints, binder, seed=seed
    )
    assert sim.outputs == golden


class TestPipelineArtifacts:
    def test_vhdl_and_metrics_from_same_solution(self, small_schedule):
        constraints = {"add": 2, "mult": 2}
        solution = bind_hlpower(
            small_schedule, constraints, config=HLPowerConfig(sa_table=_TABLE)
        )
        datapath = build_datapath(solution, 4)
        text = emit_vhdl(datapath)
        report = mux_report(solution)
        controller = build_controller(datapath)
        # Every multi-source FU mux surfaced in the metrics must have a
        # select signal in the controller and the VHDL.
        for spec in datapath.fus:
            for port, mux in (("a", spec.mux_a), ("b", spec.mux_b)):
                if mux.size > 1:
                    name = f"fu{spec.unit.fu_id}_sel_{port}"
                    assert name in {s.name for s in controller.signals}
                    assert name in text
        assert report.n_fus == len(datapath.fus)

    def test_binders_see_identical_problem(self, small_schedule):
        """Same schedule/registers/ports must yield the same mux-size
        *universe* (total register count, op set) for both binders."""
        constraints = {"add": 2, "mult": 2}
        hl = bind_hlpower(
            small_schedule, constraints, config=HLPowerConfig(sa_table=_TABLE)
        )
        lo = bind_lopass(small_schedule, constraints)
        assert hl.registers.n_registers == lo.registers.n_registers
        hl_ops = {op for u in hl.fus.units for op in u.ops}
        lo_ops = {op for u in lo.fus.units for op in u.ops}
        assert hl_ops == lo_ops

    def test_estimated_sa_tracks_structure(self, small_schedule):
        """A binding with strictly larger muxes must not get a smaller
        mapped-SA estimate (sanity of the estimation chain)."""
        constraints = {"add": 2, "mult": 2}
        solution = bind_hlpower(
            small_schedule, constraints, config=HLPowerConfig(sa_table=_TABLE)
        )
        datapath = build_datapath(solution, 4)
        design = elaborate_datapath(datapath)
        mapping = map_netlist(design.netlist, k=4)
        assert mapping.total_sa > 0
        assert mapping.glitch_sa >= 0

    def test_simulation_idempotent(self, small_schedule):
        constraints = {"add": 2, "mult": 2}
        _, mapped, first, _ = run_pipeline(
            small_schedule.cdfg, constraints, "hlpower", seed=5
        )
        _, _, second, _ = run_pipeline(
            small_schedule.cdfg, constraints, "hlpower", seed=5
        )
        assert first.comb_toggles == second.comb_toggles
        assert first.outputs == second.outputs
