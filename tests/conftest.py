"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.binding import SATable
from repro.binding.sa_table import SATableConfig
from repro.cdfg import Schedule, figure1_example, generate_cdfg
from repro.cdfg.generate import GraphProfile
from repro.scheduling import list_schedule


@pytest.fixture(scope="session")
def sa_table(tmp_path_factory) -> SATable:
    """One lazily-filled SA table shared by the whole test session."""
    path = tmp_path_factory.mktemp("sa") / "table.txt"
    return SATable(SATableConfig(width=4), str(path))


@pytest.fixture()
def figure1_schedule() -> Schedule:
    """The paper's Figure 1 example, scheduled as printed."""
    cdfg, start_times = figure1_example()
    schedule = Schedule(cdfg, start_times)
    schedule.validate()
    return schedule


@pytest.fixture()
def small_schedule() -> Schedule:
    """A small random scheduled CDFG (fast enough for full flows)."""
    profile = GraphProfile("small", 4, 3, 10, 6, n_layers=6,
                           add_width=2, mult_width=2)
    cdfg = generate_cdfg(profile, seed=3)
    return list_schedule(cdfg, {"add": 2, "mult": 2})


def evaluate_netlist(netlist, assignment):
    """Reference truth-table evaluation of a combinational netlist."""
    values = dict(assignment)
    for net in netlist.topological_order():
        gate = netlist.gates[net]
        values[net] = gate.table.evaluate(
            [values[name] for name in gate.inputs]
        )
    return values


def random_assignment(netlist, rng: random.Random):
    return {net: rng.random() < 0.5 for net in netlist.inputs}
