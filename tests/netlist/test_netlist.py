"""Unit tests for the :class:`repro.netlist.gates.Netlist` IR."""

import pytest

from repro.errors import NetlistError
from repro.netlist.gates import GateType, Netlist, TruthTable


def build_half_adder() -> Netlist:
    netlist = Netlist("ha")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    total = netlist.add_simple(GateType.XOR, (a, b), "sum")
    carry = netlist.add_simple(GateType.AND, (a, b), "carry")
    netlist.set_output(total)
    netlist.set_output(carry)
    return netlist


class TestConstruction:
    def test_half_adder_validates(self):
        build_half_adder().validate()

    def test_duplicate_driver_rejected(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.add_simple(GateType.NOT, (a,), "n")
        with pytest.raises(NetlistError):
            netlist.add_simple(GateType.BUF, (a,), "n")

    def test_input_name_collision_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_input("a")

    def test_new_net_avoids_collisions(self):
        netlist = Netlist()
        netlist.add_input("n0")
        assert netlist.new_net("n") != "n0"

    def test_gate_arity_mismatch_rejected(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_gate(TruthTable.for_type(GateType.AND, 2), (a,))

    def test_const_gates(self):
        netlist = Netlist()
        one = netlist.add_const(True)
        zero = netlist.add_const(False)
        assert netlist.gates[one].gate_type is GateType.CONST1
        assert netlist.gates[zero].gate_type is GateType.CONST0

    def test_undriven_nets_detected(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.add_simple(GateType.AND, (a, "ghost"), "y")
        assert netlist.undriven_nets() == {"ghost"}
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_set_output_idempotent(self):
        netlist = build_half_adder()
        netlist.set_output("sum")
        assert netlist.outputs.count("sum") == 1


class TestTraversal:
    def test_topological_order_respects_dependencies(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        n1 = netlist.add_simple(GateType.NOT, (a,))
        n2 = netlist.add_simple(GateType.NOT, (n1,))
        n3 = netlist.add_simple(GateType.NOT, (n2,))
        order = netlist.topological_order()
        assert order.index(n1) < order.index(n2) < order.index(n3)

    def test_cycle_detected(self):
        from repro.netlist.gates import Gate

        netlist = Netlist()
        # Create a cycle by hand (the builder API cannot).
        netlist.gates["x"] = Gate(
            "x", ("y",), TruthTable.for_type(GateType.BUF, 1), GateType.BUF
        )
        netlist.gates["y"] = Gate(
            "y", ("x",), TruthTable.for_type(GateType.BUF, 1), GateType.BUF
        )
        with pytest.raises(NetlistError):
            netlist.topological_order()

    def test_levels_and_depth(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        n1 = netlist.add_simple(GateType.NOT, (a,))
        n2 = netlist.add_simple(GateType.NOT, (n1,))
        netlist.set_output(n2)
        levels = netlist.levels()
        assert levels[a] == 0
        assert levels[n1] == 1
        assert levels[n2] == 2
        assert netlist.depth() == 2

    def test_latch_breaks_combinational_depth(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        q = netlist.add_latch(a)
        y = netlist.add_simple(GateType.NOT, (q,))
        netlist.set_output(y)
        assert netlist.levels()[y] == 1

    def test_fanout_map(self):
        netlist = build_half_adder()
        fanout = netlist.fanout_map()
        assert sorted(fanout["a"]) == ["carry", "sum"]
        assert fanout["sum"] == []

    def test_transitive_fanin(self):
        netlist = build_half_adder()
        cone = netlist.transitive_fanin(["sum"])
        assert cone == {"sum", "a", "b"}


class TestLatches:
    def test_latch_is_source(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        q = netlist.add_latch(a, init=True)
        assert netlist.is_source(q)
        assert netlist.latches[q].init is True

    def test_latch_with_enable_validates(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        en = netlist.add_input("en")
        q = netlist.add_latch(a, enable=en)
        netlist.set_output(q)
        netlist.validate()

    def test_latch_name_collision_rejected(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.add_latch(a, "q")
        with pytest.raises(NetlistError):
            netlist.add_latch(a, "q")


class TestInstantiate:
    def test_instantiate_connects_ports(self):
        sub = build_half_adder()
        top = Netlist("top")
        x = top.add_input("x")
        y = top.add_input("y")
        out_map = top.instantiate(sub, {"a": x, "b": y}, "u0/")
        top.set_output(out_map["sum"])
        top.validate()
        assert out_map["sum"] == "u0/sum"

    def test_instantiate_requires_all_inputs(self):
        sub = build_half_adder()
        top = Netlist("top")
        x = top.add_input("x")
        with pytest.raises(NetlistError):
            top.instantiate(sub, {"a": x}, "u0/")

    def test_output_map_forces_names(self):
        sub = build_half_adder()
        top = Netlist("top")
        x = top.add_input("x")
        y = top.add_input("y")
        out_map = top.instantiate(
            sub, {"a": x, "b": y}, "u0/", output_map={"sum": "result"}
        )
        assert out_map["sum"] == "result"
        assert "result" in top.gates

    def test_output_map_rejects_non_outputs(self):
        sub = build_half_adder()
        top = Netlist("top")
        x = top.add_input("x")
        y = top.add_input("y")
        with pytest.raises(NetlistError):
            top.instantiate(
                sub, {"a": x, "b": y}, "u0/", output_map={"a": "oops"}
            )

    def test_two_instances_do_not_collide(self):
        sub = build_half_adder()
        top = Netlist("top")
        x = top.add_input("x")
        y = top.add_input("y")
        m1 = top.instantiate(sub, {"a": x, "b": y}, "u0/")
        m2 = top.instantiate(sub, {"a": x, "b": m1["sum"]}, "u1/")
        top.set_output(m2["carry"])
        top.validate()
