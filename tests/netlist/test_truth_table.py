"""Unit tests for :class:`repro.netlist.gates.TruthTable`."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetlistError
from repro.netlist.gates import GateType, TruthTable, iter_minterms


def table_strategy(max_inputs: int = 4):
    return st.integers(0, max_inputs).flatmap(
        lambda n: st.builds(
            TruthTable,
            st.just(n),
            st.integers(0, (1 << (1 << n)) - 1),
        )
    )


class TestConstruction:
    def test_constant_true(self):
        table = TruthTable.constant(True)
        assert table.n_inputs == 0
        assert table.evaluate([]) is True

    def test_constant_false(self):
        assert TruthTable.constant(False).evaluate([]) is False

    def test_bits_are_masked(self):
        table = TruthTable(1, 0b1111)
        assert table.bits == 0b11

    def test_negative_inputs_rejected(self):
        with pytest.raises(NetlistError):
            TruthTable(-1, 0)

    def test_from_function_matches_direct(self):
        table = TruthTable.from_function(2, lambda v: v[0] and not v[1])
        assert table.evaluate([True, False]) is True
        assert table.evaluate([True, True]) is False
        assert table.evaluate([False, False]) is False


class TestNamedTypes:
    @pytest.mark.parametrize(
        "gate_type,inputs,expected",
        [
            (GateType.AND, [True, True], True),
            (GateType.AND, [True, False], False),
            (GateType.OR, [False, False], False),
            (GateType.OR, [False, True], True),
            (GateType.NAND, [True, True], False),
            (GateType.NOR, [False, False], True),
            (GateType.XOR, [True, False], True),
            (GateType.XOR, [True, True], False),
            (GateType.XNOR, [True, True], True),
        ],
    )
    def test_two_input_gates(self, gate_type, inputs, expected):
        table = TruthTable.for_type(gate_type, 2)
        assert table.evaluate(inputs) is expected

    def test_wide_xor_is_parity(self):
        table = TruthTable.for_type(GateType.XOR, 4)
        assert table.evaluate([True, True, True, False]) is True
        assert table.evaluate([True, True, True, True]) is False

    def test_not_and_buf(self):
        assert TruthTable.for_type(GateType.NOT, 1).evaluate([True]) is False
        assert TruthTable.for_type(GateType.BUF, 1).evaluate([True]) is True

    def test_mux_semantics(self):
        # inputs are (sel, a, b): output is b when sel else a.
        table = TruthTable.for_type(GateType.MUX, 3)
        assert table.evaluate([False, True, False]) is True
        assert table.evaluate([True, True, False]) is False

    def test_buf_arity_enforced(self):
        with pytest.raises(NetlistError):
            TruthTable.for_type(GateType.BUF, 2)

    def test_mux_arity_enforced(self):
        with pytest.raises(NetlistError):
            TruthTable.for_type(GateType.MUX, 2)

    def test_classify_round_trip(self):
        for gate_type in (
            GateType.AND,
            GateType.OR,
            GateType.XOR,
            GateType.NAND,
            GateType.NOR,
            GateType.XNOR,
        ):
            table = TruthTable.for_type(gate_type, 3)
            assert table.classify() is gate_type

    def test_classify_constants(self):
        assert TruthTable(2, 0).classify() is GateType.CONST0
        assert TruthTable(2, 0b1111).classify() is GateType.CONST1

    def test_classify_generic_is_lut(self):
        # f = a AND (b OR c) matches no named type.
        table = TruthTable.from_function(
            3, lambda v: v[0] and (v[1] or v[2])
        )
        assert table.classify() is GateType.LUT


class TestCofactorAndDifference:
    def test_cofactor_of_and(self):
        table = TruthTable.for_type(GateType.AND, 2)
        assert table.cofactor(0, True) == TruthTable.for_type(GateType.BUF, 1)
        assert table.cofactor(0, False).is_constant() is False

    def test_cofactor_out_of_range(self):
        with pytest.raises(NetlistError):
            TruthTable.for_type(GateType.AND, 2).cofactor(2, True)

    def test_boolean_difference_of_xor_is_one(self):
        table = TruthTable.for_type(GateType.XOR, 2)
        assert table.boolean_difference(0).is_constant() is True

    def test_boolean_difference_of_and(self):
        # d(ab)/da = b.
        table = TruthTable.for_type(GateType.AND, 2)
        assert table.boolean_difference(0) == TruthTable.for_type(
            GateType.BUF, 1
        )

    def test_depends_on_and_support(self):
        # f = a (ignores b).
        table = TruthTable.from_function(2, lambda v: v[0])
        assert table.depends_on(0)
        assert not table.depends_on(1)
        assert table.support() == [0]

    @given(table_strategy(3), st.integers(0, 2))
    def test_shannon_expansion(self, table, var):
        if var >= table.n_inputs:
            return
        hi = table.cofactor(var, True)
        lo = table.cofactor(var, False)
        for i in range(1 << table.n_inputs):
            inputs = [bool((i >> k) & 1) for k in range(table.n_inputs)]
            reduced = [v for k, v in enumerate(inputs) if k != var]
            expected = hi.evaluate(reduced) if inputs[var] else lo.evaluate(
                reduced
            )
            assert table.evaluate(inputs) == expected


class TestPermute:
    def test_identity(self):
        table = TruthTable.from_function(3, lambda v: v[0] and not v[2])
        assert table.permute([0, 1, 2]) == table

    def test_swap(self):
        table = TruthTable.from_function(2, lambda v: v[0] and not v[1])
        swapped = table.permute([1, 0])
        assert swapped.evaluate([False, True]) is True
        assert swapped.evaluate([True, False]) is False

    def test_bad_permutation_rejected(self):
        with pytest.raises(NetlistError):
            TruthTable.for_type(GateType.AND, 2).permute([0, 0])

    @given(table_strategy(4), st.permutations(range(4)))
    def test_permute_preserves_function(self, table, order):
        if table.n_inputs != 4:
            return
        permuted = table.permute(order)
        for i in range(16):
            inputs = [bool((i >> k) & 1) for k in range(4)]
            new_inputs = [inputs[order[k]] for k in range(4)]
            assert permuted.evaluate(new_inputs) == table.evaluate(inputs)


class TestMisc:
    def test_negate(self):
        table = TruthTable.for_type(GateType.AND, 2)
        assert table.negate() == TruthTable.for_type(GateType.NAND, 2)

    @given(table_strategy(4))
    def test_double_negation(self, table):
        assert table.negate().negate() == table

    def test_iter_minterms(self):
        table = TruthTable.for_type(GateType.AND, 2)
        assert list(iter_minterms(table)) == [(True, True)]

    def test_output_column_length(self):
        assert len(TruthTable(3, 0).output_column()) == 8

    def test_hash_and_eq(self):
        a = TruthTable.for_type(GateType.AND, 2)
        b = TruthTable(2, 0b1000)
        assert a == b
        assert hash(a) == hash(b)
        assert a != TruthTable.for_type(GateType.OR, 2)

    def test_evaluate_arity_checked(self):
        with pytest.raises(NetlistError):
            TruthTable.for_type(GateType.AND, 2).evaluate([True])
