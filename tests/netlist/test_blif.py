"""Tests for the BLIF reader/writer."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist.blif import blif_text, parse_blif
from repro.netlist.gates import GateType, Netlist, TruthTable
from repro.netlist.library import build_adder

from tests.conftest import evaluate_netlist


class TestWriter:
    def test_header_and_end(self):
        netlist = Netlist("widget")
        a = netlist.add_input("a")
        netlist.set_output(netlist.add_simple(GateType.NOT, (a,), "y"))
        text = blif_text(netlist)
        assert text.startswith(".model widget\n")
        assert ".inputs a" in text
        assert ".outputs y" in text
        assert text.rstrip().endswith(".end")

    def test_not_gate_cover(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.set_output(netlist.add_simple(GateType.NOT, (a,), "y"))
        assert "0 1" in blif_text(netlist)

    def test_constant_covers(self):
        netlist = Netlist()
        one = netlist.add_const(True, "one")
        zero = netlist.add_const(False, "zero")
        netlist.set_output(one)
        netlist.set_output(zero)
        text = blif_text(netlist)
        assert ".names one\n1" in text
        # Constant 0 is an empty cover.
        assert ".names zero" in text

    def test_latch_line(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        q = netlist.add_latch(a, "q", init=True)
        netlist.set_output(q)
        assert ".latch a q 1" in blif_text(netlist)

    def test_long_input_list_wraps(self):
        netlist = Netlist()
        nets = [netlist.add_input(f"verylonginputname{i}") for i in range(20)]
        netlist.set_output(netlist.add_simple(GateType.NOT, (nets[0],), "y"))
        text = blif_text(netlist)
        assert "\\\n" in text
        assert all(len(line) <= 80 for line in text.splitlines())


class TestParser:
    def test_round_trip_adder(self):
        original = build_adder(3)
        parsed = parse_blif(blif_text(original))
        parsed.validate()
        rng = random.Random(5)
        for _ in range(20):
            assignment = {pi: rng.random() < 0.5 for pi in original.inputs}
            expected = evaluate_netlist(original, assignment)
            actual = evaluate_netlist(parsed, assignment)
            for out in original.outputs:
                assert actual[out] == expected[out]

    def test_dont_care_cube(self):
        text = """
.model m
.inputs a b c
.outputs y
.names a b c y
1-0 1
.end
"""
        netlist = parse_blif(text)
        gate = netlist.gates["y"]
        assert gate.table.evaluate([True, False, False]) is True
        assert gate.table.evaluate([True, True, False]) is True
        assert gate.table.evaluate([True, True, True]) is False

    def test_multi_row_cover_is_or_of_cubes(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n10 1\n01 1\n.end\n"
        netlist = parse_blif(text)
        assert netlist.gates["y"].table == TruthTable.for_type(GateType.XOR, 2)

    def test_off_set_cover(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
        netlist = parse_blif(text)
        assert netlist.gates["y"].table == TruthTable.for_type(GateType.NAND, 2)

    def test_mixed_cover_rejected(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n"
        with pytest.raises(NetlistError):
            parse_blif(text)

    def test_continuation_lines(self):
        text = ".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
        netlist = parse_blif(text)
        assert netlist.inputs == ["a", "b"]

    def test_comments_stripped(self):
        text = "# header\n.model m # name\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"
        netlist = parse_blif(text)
        assert netlist.inputs == ["a"]

    def test_subckt_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.subckt foo a=a y=y\n.end\n"
        with pytest.raises(NetlistError):
            parse_blif(text)

    def test_malformed_cover_rejected(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n"
        with pytest.raises(NetlistError):
            parse_blif(text)

    def test_bad_cube_character_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\nx 1\n.end\n"
        with pytest.raises(NetlistError):
            parse_blif(text)

    def test_latch_parsing(self):
        text = ".model m\n.inputs d\n.outputs q\n.latch d q 1\n.end\n"
        netlist = parse_blif(text)
        assert netlist.latches["q"].init is True


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2 ** 16 - 1))
def test_random_table_round_trips(bits):
    """Any 4-input function survives a write/parse cycle."""
    netlist = Netlist("roundtrip")
    inputs = [netlist.add_input(f"i{k}") for k in range(4)]
    table = TruthTable(4, bits)
    netlist.set_output(netlist.add_gate(table, inputs, "y"))
    parsed = parse_blif(blif_text(netlist))
    parsed_table = parsed.gates["y"].table
    constant = table.is_constant()
    if constant is not None:
        # Constant covers legitimately parse as 0-arity constants.
        assert parsed_table.is_constant() == constant
    else:
        assert parsed_table == table
