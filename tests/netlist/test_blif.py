"""Tests for the BLIF reader/writer."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist.blif import blif_text, parse_blif
from repro.netlist.gates import GateType, Netlist, TruthTable
from repro.netlist.library import build_adder

from tests.conftest import evaluate_netlist


class TestWriter:
    def test_header_and_end(self):
        netlist = Netlist("widget")
        a = netlist.add_input("a")
        netlist.set_output(netlist.add_simple(GateType.NOT, (a,), "y"))
        text = blif_text(netlist)
        assert text.startswith(".model widget\n")
        assert ".inputs a" in text
        assert ".outputs y" in text
        assert text.rstrip().endswith(".end")

    def test_not_gate_cover(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.set_output(netlist.add_simple(GateType.NOT, (a,), "y"))
        assert "0 1" in blif_text(netlist)

    def test_constant_covers(self):
        netlist = Netlist()
        one = netlist.add_const(True, "one")
        zero = netlist.add_const(False, "zero")
        netlist.set_output(one)
        netlist.set_output(zero)
        text = blif_text(netlist)
        assert ".names one\n1" in text
        # Constant 0 is an empty cover.
        assert ".names zero" in text

    def test_latch_line(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        q = netlist.add_latch(a, "q", init=True)
        netlist.set_output(q)
        assert ".latch a q 1" in blif_text(netlist)

    def test_long_input_list_wraps(self):
        netlist = Netlist()
        nets = [netlist.add_input(f"verylonginputname{i}") for i in range(20)]
        netlist.set_output(netlist.add_simple(GateType.NOT, (nets[0],), "y"))
        text = blif_text(netlist)
        assert "\\\n" in text
        assert all(len(line) <= 80 for line in text.splitlines())


class TestParser:
    def test_round_trip_adder(self):
        original = build_adder(3)
        parsed = parse_blif(blif_text(original))
        parsed.validate()
        rng = random.Random(5)
        for _ in range(20):
            assignment = {pi: rng.random() < 0.5 for pi in original.inputs}
            expected = evaluate_netlist(original, assignment)
            actual = evaluate_netlist(parsed, assignment)
            for out in original.outputs:
                assert actual[out] == expected[out]

    def test_dont_care_cube(self):
        text = """
.model m
.inputs a b c
.outputs y
.names a b c y
1-0 1
.end
"""
        netlist = parse_blif(text)
        gate = netlist.gates["y"]
        assert gate.table.evaluate([True, False, False]) is True
        assert gate.table.evaluate([True, True, False]) is True
        assert gate.table.evaluate([True, True, True]) is False

    def test_multi_row_cover_is_or_of_cubes(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n10 1\n01 1\n.end\n"
        netlist = parse_blif(text)
        assert netlist.gates["y"].table == TruthTable.for_type(GateType.XOR, 2)

    def test_off_set_cover(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
        netlist = parse_blif(text)
        assert netlist.gates["y"].table == TruthTable.for_type(GateType.NAND, 2)

    def test_mixed_cover_rejected(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n"
        with pytest.raises(NetlistError):
            parse_blif(text)

    def test_continuation_lines(self):
        text = ".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
        netlist = parse_blif(text)
        assert netlist.inputs == ["a", "b"]

    def test_comments_stripped(self):
        text = "# header\n.model m # name\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"
        netlist = parse_blif(text)
        assert netlist.inputs == ["a"]

    def test_subckt_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.subckt foo a=a y=y\n.end\n"
        with pytest.raises(NetlistError):
            parse_blif(text)

    def test_malformed_cover_rejected(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n"
        with pytest.raises(NetlistError):
            parse_blif(text)

    def test_bad_cube_character_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\nx 1\n.end\n"
        with pytest.raises(NetlistError):
            parse_blif(text)

    def test_latch_parsing(self):
        text = ".model m\n.inputs d\n.outputs q\n.latch d q 1\n.end\n"
        netlist = parse_blif(text)
        assert netlist.latches["q"].init is True


def _latch_netlist(latch_line):
    return parse_blif(
        f".model m\n.inputs d\n.outputs q\n{latch_line}\n.end\n"
    )


class TestLatchArities:
    """`.latch <in> <out> [<type> [<control>]] [<init>]` — all arities."""

    def test_two_tokens_default_init(self):
        assert _latch_netlist(".latch d q").latches["q"].init is False

    @pytest.mark.parametrize("literal, init", [
        ("0", False), ("1", True), ("2", False), ("3", False),
    ])
    def test_three_tokens_init_literals(self, literal, init):
        latch = _latch_netlist(f".latch d q {literal}").latches["q"]
        assert latch.init is init
        assert latch.data == "d"

    def test_four_tokens_type_no_init(self):
        latch = _latch_netlist(".latch d q re").latches["q"]
        assert latch.init is False

    def test_four_tokens_type_and_init(self):
        assert _latch_netlist(".latch d q re 1").latches["q"].init is True

    def test_five_tokens_type_control(self):
        latch = _latch_netlist(".latch d q re clk").latches["q"]
        assert latch.init is False
        assert latch.data == "d"

    @pytest.mark.parametrize("literal, init", [("0", False), ("1", True)])
    def test_six_tokens_full_form(self, literal, init):
        # The seed parser read token 4 ("re") as the init here.
        latch = _latch_netlist(f".latch d q re clk {literal}").latches["q"]
        assert latch.init is init

    @pytest.mark.parametrize("trigger", ["fe", "ah", "al", "as", "bogus"])
    def test_unsupported_trigger_rejected(self, trigger):
        with pytest.raises(NetlistError, match="trigger"):
            _latch_netlist(f".latch d q {trigger} clk 1")

    def test_too_few_tokens_rejected(self):
        with pytest.raises(NetlistError, match="malformed"):
            _latch_netlist(".latch d")

    def test_too_many_tokens_rejected(self):
        with pytest.raises(NetlistError, match="malformed"):
            _latch_netlist(".latch d q re clk extra 1")


class TestParseValidation:
    """Malformed netlists fail at parse time, naming the net."""

    def test_undriven_declared_output(self):
        text = ".model m\n.inputs a\n.outputs y z\n.names a y\n1 1\n.end\n"
        with pytest.raises(NetlistError, match="'z'"):
            parse_blif(text)

    def test_output_driven_by_input_is_fine(self):
        text = ".model m\n.inputs a\n.outputs a\n.end\n"
        assert parse_blif(text).outputs == ["a"]

    def test_names_redefining_input(self):
        text = ".model m\n.inputs a b\n.outputs a\n.names b a\n1 1\n.end\n"
        with pytest.raises(NetlistError,
                           match=r"\.names redefines declared .inputs net 'a'"):
            parse_blif(text)

    def test_latch_redefining_input(self):
        text = ".model m\n.inputs d q\n.outputs q\n.latch d q 0\n.end\n"
        with pytest.raises(NetlistError,
                           match=r"\.latch redefines declared .inputs net 'q'"):
            parse_blif(text)

    def test_two_covers_driving_same_net(self):
        text = (".model m\n.inputs a b\n.outputs y\n"
                ".names a y\n1 1\n.names b y\n1 1\n.end\n")
        with pytest.raises(NetlistError, match="'y'.*more than once"):
            parse_blif(text)

    def test_cover_redefining_latch_output(self):
        text = (".model m\n.inputs a d\n.outputs q\n"
                ".latch d q 0\n.names a q\n1 1\n.end\n")
        with pytest.raises(NetlistError, match="'q'"):
            parse_blif(text)


class TestZeroInputCovers:
    def test_const_one(self):
        text = ".model m\n.outputs y\n.names y\n1\n.end\n"
        assert parse_blif(text).gates["y"].gate_type is GateType.CONST1

    def test_const_zero_row(self):
        text = ".model m\n.outputs y\n.names y\n0\n.end\n"
        assert parse_blif(text).gates["y"].gate_type is GateType.CONST0

    def test_empty_cover_is_const_zero(self):
        text = ".model m\n.outputs y\n.names y\n.end\n"
        assert parse_blif(text).gates["y"].gate_type is GateType.CONST0

    def test_multi_row_rejected(self):
        text = ".model m\n.outputs y\n.names y\n1\n1\n.end\n"
        with pytest.raises(NetlistError, match="rows"):
            parse_blif(text)

    def test_bad_value_rejected(self):
        for row in ("-", "x", "2", "1 1"):
            text = f".model m\n.outputs y\n.names y\n{row}\n.end\n"
            with pytest.raises(NetlistError):
                parse_blif(text)


@st.composite
def _round_trip_netlists(draw):
    """Random netlists whose BLIF is a write/parse/write fixed point.

    All-zero truth tables with inputs are excluded: the writer emits
    them as an empty cover, which legitimately reparses as a 0-arity
    constant (arity is not representable in BLIF for them). Constant-1
    tables with inputs round-trip exactly (full dash cube).
    """
    netlist = Netlist("hyp")
    # Long input names force >78-column `.inputs` wrapping.
    prefix = draw(st.sampled_from(
        ["i", "quite_a_long_structural_net_name_"]
    ))
    n_inputs = draw(st.integers(2, 6))
    pool = [netlist.add_input(f"{prefix}{k}") for k in range(n_inputs)]
    for g in range(draw(st.integers(1, 6))):
        arity = draw(st.integers(1, 3))
        fanins = [
            pool[draw(st.integers(0, len(pool) - 1))] for _ in range(arity)
        ]
        bits = draw(st.integers(1, (1 << (1 << arity)) - 1))
        pool.append(
            netlist.add_gate(TruthTable(arity, bits), fanins, f"g{g}")
        )
    for l in range(draw(st.integers(0, 2))):
        data = pool[draw(st.integers(0, len(pool) - 1))]
        pool.append(
            netlist.add_latch(data, f"q{l}", init=draw(st.booleans()))
        )
    if draw(st.booleans()):
        netlist.add_const(draw(st.booleans()), "k")
        pool.append("k")
    out_indices = draw(st.lists(
        st.integers(n_inputs, len(pool) - 1),
        min_size=1, max_size=4, unique=True,
    ))
    for index in out_indices:
        netlist.set_output(pool[index])
    return netlist


@settings(max_examples=80, deadline=None)
@given(_round_trip_netlists())
def test_blif_text_is_parse_fixed_point(netlist):
    """blif_text -> parse_blif -> blif_text is byte-identical."""
    first = blif_text(netlist)
    second = blif_text(parse_blif(first))
    assert second == first


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 2 ** 8 - 2), st.integers(2, 4))
def test_off_set_cover_normalizes_then_sticks(bits, arity):
    """Off-set covers parse to the complement and the re-emitted
    (on-set) text is itself a fixed point."""
    bits &= (1 << (1 << arity)) - 1
    if bits in (0, (1 << (1 << arity)) - 1):
        bits = 1
    table = TruthTable(arity, bits)
    names = " ".join(f"i{k}" for k in range(arity))
    rows = []
    for index in range(1 << arity):
        if not table.evaluate(
            [(index >> k) & 1 == 1 for k in range(arity)]
        ):
            rows.append(
                "".join("1" if (index >> k) & 1 else "0"
                        for k in range(arity)) + " 0"
            )
    text = (f".model m\n.inputs {names}\n.outputs y\n"
            f".names {names} y\n" + "\n".join(rows) + "\n.end\n")
    parsed = parse_blif(text)
    assert parsed.gates["y"].table == table
    normalized = blif_text(parsed)
    assert blif_text(parse_blif(normalized)) == normalized


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2 ** 16 - 1))
def test_random_table_round_trips(bits):
    """Any 4-input function survives a write/parse cycle."""
    netlist = Netlist("roundtrip")
    inputs = [netlist.add_input(f"i{k}") for k in range(4)]
    table = TruthTable(4, bits)
    netlist.set_output(netlist.add_gate(table, inputs, "y"))
    parsed = parse_blif(blif_text(netlist))
    parsed_table = parsed.gates["y"].table
    constant = table.is_constant()
    if constant is not None:
        # Constant covers legitimately parse as 0-arity constants.
        assert parsed_table.is_constant() == constant
    else:
        assert parsed_table == table
