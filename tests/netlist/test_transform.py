"""Tests for netlist cleanup transforms."""

import random

from hypothesis import given, settings, strategies as st

from repro.netlist.gates import GateType, Netlist
from repro.netlist.library import build_partial_datapath
from repro.netlist.transform import (
    clean,
    propagate_constants,
    sweep_buffers,
    sweep_dead,
)

from tests.conftest import evaluate_netlist


class TestConstantPropagation:
    def test_and_with_zero_becomes_constant(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        zero = netlist.add_const(False)
        y = netlist.add_simple(GateType.AND, (a, zero), "y")
        netlist.set_output(y)
        assert propagate_constants(netlist) >= 1
        assert netlist.gates["y"].gate_type is GateType.CONST0

    def test_and_with_one_becomes_buffer(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        one = netlist.add_const(True)
        y = netlist.add_simple(GateType.AND, (a, one), "y")
        netlist.set_output(y)
        propagate_constants(netlist)
        assert netlist.gates["y"].gate_type is GateType.BUF

    def test_constant_chains_fold_to_fixpoint(self):
        netlist = Netlist()
        zero = netlist.add_const(False)
        n1 = netlist.add_simple(GateType.NOT, (zero,))
        a = netlist.add_input("a")
        y = netlist.add_simple(GateType.OR, (a, n1), "y")
        netlist.set_output(y)
        propagate_constants(netlist)
        assert netlist.gates["y"].gate_type is GateType.CONST1


class TestBufferSweep:
    def test_chain_collapses(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b1 = netlist.add_simple(GateType.BUF, (a,))
        b2 = netlist.add_simple(GateType.BUF, (b1,))
        y = netlist.add_simple(GateType.NOT, (b2,), "y")
        netlist.set_output(y)
        removed = sweep_buffers(netlist)
        assert removed == 2
        assert netlist.gates["y"].inputs == (a,)

    def test_output_buffers_kept(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        y = netlist.add_simple(GateType.BUF, (a,), "y")
        netlist.set_output(y)
        assert sweep_buffers(netlist) == 0
        assert "y" in netlist.gates

    def test_latch_data_rewired(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        buf = netlist.add_simple(GateType.BUF, (a,))
        q = netlist.add_latch(buf, "q")
        netlist.set_output(q)
        sweep_buffers(netlist)
        assert netlist.latches["q"].data == a


class TestDeadSweep:
    def test_unreachable_logic_removed(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        y = netlist.add_simple(GateType.NOT, (a,), "y")
        netlist.add_simple(GateType.AND, (a, a), "dead")
        netlist.set_output(y)
        assert sweep_dead(netlist) == 1
        assert "dead" not in netlist.gates

    def test_latch_cone_is_live(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        inv = netlist.add_simple(GateType.NOT, (a,))
        q = netlist.add_latch(inv, "q")
        y = netlist.add_simple(GateType.BUF, (q,), "y")
        netlist.set_output(y)
        assert sweep_dead(netlist) == 0

    def test_recirculating_latch_survives(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        en = netlist.add_input("en")
        data = netlist.new_net()
        q = netlist.add_latch(data, "q")
        netlist.add_simple(GateType.MUX, (en, q, a), data)
        netlist.set_output(q)
        assert sweep_dead(netlist) == 0


class TestClean:
    def test_clean_preserves_function(self):
        netlist = build_partial_datapath("add", 3, 2, 4)
        reference = build_partial_datapath("add", 3, 2, 4)
        clean(netlist)
        rng = random.Random(17)
        for _ in range(25):
            assignment = {pi: rng.random() < 0.5 for pi in reference.inputs}
            expected = evaluate_netlist(reference, assignment)
            actual = evaluate_netlist(netlist, assignment)
            for out in reference.outputs:
                assert actual[out] == expected[out]

    def test_clean_reduces_gate_count(self):
        netlist = build_partial_datapath("mult", 2, 2, 4)
        before = netlist.num_gates()
        folded, buffers, dead = clean(netlist)
        assert netlist.num_gates() < before
        assert folded + buffers + dead > 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 1000))
    def test_clean_preserves_random_datapaths(self, m1, m2, seed):
        netlist = build_partial_datapath("add", m1, m2, 3)
        reference = build_partial_datapath("add", m1, m2, 3)
        clean(netlist)
        rng = random.Random(seed)
        assignment = {pi: rng.random() < 0.5 for pi in reference.inputs}
        expected = evaluate_netlist(reference, assignment)
        actual = evaluate_netlist(netlist, assignment)
        for out in reference.outputs:
            assert actual[out] == expected[out]
