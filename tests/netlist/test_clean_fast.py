"""Differential pinning: the worklist ``clean_fast`` vs the seed ``clean``.

``repro.netlist.compile.clean_fast`` must be a pure speedup of
``repro.netlist.transform.clean`` — same fold/buffer/dead counts and a
gate-for-gate identical result (names, insertion order, tables,
latches, BLIF bytes). The suite drives both over hypothesis-generated
netlists biased toward the pathological shapes the worklist passes
must handle: deep buffer chains (path compression), constant cones
(multi-wave folding), and dangling fanout (dead-cone removal).

The golden class freezes the cleaned gate counts of all seven paper
benchmarks — a cheap tripwire for any change that shifts what the
cleanup removes.
"""

import copy
import io
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.blif import write_blif
from repro.netlist.compile import clean_fast
from repro.netlist.gates import GateType, Netlist
from repro.netlist.transform import clean

#: Gate types the random builder draws from, with their arities.
_DRAWABLE = (
    (GateType.BUF, 1),
    (GateType.NOT, 1),
    (GateType.AND, 2),
    (GateType.OR, 2),
    (GateType.NAND, 2),
    (GateType.XOR, 2),
    (GateType.MUX, 3),
)


def random_netlist(seed: int, n_gates: int = 60) -> Netlist:
    """A random DAG salted with the pathological shapes.

    Roughly one third of the draws extend buffer chains, constants
    appear as inputs throughout (building foldable cones), and only a
    suffix of the nets is ever marked as an output, leaving dangling
    fanout for the dead sweep.
    """
    rng = random.Random(seed)
    netlist = Netlist()
    nets = [netlist.add_input(f"pi{i}") for i in range(rng.randint(2, 5))]
    nets.append(netlist.add_const(False))
    nets.append(netlist.add_const(True))
    for index in range(n_gates):
        roll = rng.random()
        if roll < 0.35:  # deep buffer chains
            gate_type, arity = GateType.BUF, 1
        else:
            gate_type, arity = _DRAWABLE[
                rng.randrange(len(_DRAWABLE))
            ]
        inputs = tuple(rng.choice(nets) for _ in range(arity))
        nets.append(netlist.add_simple(gate_type, inputs, f"g{index}"))
    # A couple of latches so the sweeps exercise data/enable rewiring.
    for index in range(rng.randint(0, 2)):
        nets.append(netlist.add_latch(rng.choice(nets), f"q{index}"))
    # Only a few late nets become outputs; the rest is dangling.
    for _ in range(rng.randint(1, 4)):
        netlist.set_output(rng.choice(nets[-10:]))
    return netlist


def blif_bytes(netlist: Netlist) -> str:
    stream = io.StringIO()
    write_blif(netlist, stream)
    return stream.getvalue()


def assert_identical_netlists(reference: Netlist, fast: Netlist) -> None:
    """Gate-for-gate identity, insertion order included."""
    assert list(reference.inputs) == list(fast.inputs)
    assert list(reference.outputs) == list(fast.outputs)
    assert list(reference.gates) == list(fast.gates)
    for net, gate in reference.gates.items():
        other = fast.gates[net]
        assert gate.output == other.output
        assert gate.inputs == other.inputs
        assert gate.gate_type == other.gate_type
        assert gate.table.n_inputs == other.table.n_inputs
        assert gate.table.bits == other.table.bits
    assert list(reference.latches) == list(fast.latches)
    for name, latch in reference.latches.items():
        other = fast.latches[name]
        assert (latch.data, latch.output, latch.enable) == (
            other.data, other.output, other.enable
        )
    assert blif_bytes(reference) == blif_bytes(fast)


def assert_clean_equivalent(netlist: Netlist) -> None:
    reference = copy.deepcopy(netlist)
    fast = copy.deepcopy(netlist)
    assert clean(reference) == clean_fast(fast)
    assert_identical_netlists(reference, fast)


class TestCleanFastProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_pathological_netlists(self, seed):
        assert_clean_equivalent(random_netlist(seed))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(120, 240))
    def test_larger_netlists(self, seed, n_gates):
        assert_clean_equivalent(random_netlist(seed, n_gates))


class TestCleanFastDirected:
    def test_deep_buffer_chain(self):
        netlist = Netlist()
        net = netlist.add_input("a")
        for index in range(500):
            net = netlist.add_simple(GateType.BUF, (net,), f"b{index}")
        y = netlist.add_simple(GateType.NOT, (net,), "y")
        netlist.set_output(y)
        assert_clean_equivalent(netlist)

    def test_constant_cone(self):
        netlist = Netlist()
        zero = netlist.add_const(False)
        one = netlist.add_const(True)
        a = netlist.add_input("a")
        net = netlist.add_simple(GateType.OR, (zero, one), "c0")
        for index in range(50):
            net = netlist.add_simple(
                GateType.AND if index % 2 else GateType.XOR,
                (net, one if index % 3 else zero),
                f"c{index + 1}",
            )
        y = netlist.add_simple(GateType.OR, (a, net), "y")
        netlist.set_output(y)
        assert_clean_equivalent(netlist)

    def test_dangling_fanout(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        live = netlist.add_simple(GateType.AND, (a, b), "live")
        net = live
        for index in range(40):  # a long cone nobody reads
            net = netlist.add_simple(GateType.NOT, (net,), f"d{index}")
        netlist.set_output(live)
        assert_clean_equivalent(netlist)

    def test_buffer_chain_into_latch(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        net = a
        for index in range(20):
            net = netlist.add_simple(GateType.BUF, (net,), f"b{index}")
        q = netlist.add_latch(net, "q")
        netlist.set_output(q)
        assert_clean_equivalent(netlist)

    def test_constant_into_mux_select(self):
        netlist = Netlist()
        one = netlist.add_const(True)
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        y = netlist.add_simple(GateType.MUX, (one, a, b), "y")
        netlist.set_output(y)
        assert_clean_equivalent(netlist)


#: Cleaned gate counts of the seven paper benchmarks (fast elaborator,
#: width 8). Regenerate ONLY when a deliberate library or cleanup
#: change shifts elaboration (and record why in the commit):
#:     PYTHONPATH=src python -c "from tests.netlist.test_clean_fast \
#:         import cleaned_gate_count, _GOLDEN_CLEANED; \
#:         print({n: cleaned_gate_count(n) for n in _GOLDEN_CLEANED})"
_GOLDEN_CLEANED = {
    "chem": 6410,
    "dir": 2086,
    "honda": 1984,
    "mcm": 1496,
    "pr": 932,
    "steam": 4182,
    "wang": 996,
}


def cleaned_gate_count(bench_name: str) -> int:
    from repro import benchmark_spec, load_benchmark
    from repro.flow.run import prepare_flow_inputs
    from repro.fpga.compile import elaborate_design
    from repro.rtl.datapath import build_datapath
    from repro.flow.pipeline import run_binder
    from repro.scheduling import list_schedule

    spec = benchmark_spec(bench_name)
    schedule = list_schedule(load_benchmark(bench_name), spec.constraints)
    registers, ports = prepare_flow_inputs(schedule)
    solution = run_binder(
        "lopass", schedule, spec.constraints, registers, ports
    )
    datapath = build_datapath(solution, 8)
    return elaborate_design(datapath, "fast").netlist.num_gates()


class TestGoldenCleanedCounts:
    @pytest.mark.parametrize("bench_name", sorted(_GOLDEN_CLEANED))
    def test_cleaned_gate_count_pinned(self, bench_name):
        assert cleaned_gate_count(bench_name) == _GOLDEN_CLEANED[bench_name]
