"""Functional tests for the structural library generators."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist.library import (
    build_adder,
    build_addsub,
    build_equality_comparator,
    build_functional_unit,
    build_multiplier,
    build_mux,
    build_partial_datapath,
    build_register,
    build_subtractor,
    select_width,
)

from tests.conftest import evaluate_netlist


def drive_bus(assignment, name, width, value):
    for bit in range(width):
        assignment[f"{name}{bit}"] = bool((value >> bit) & 1)


def read_bus(values, name, width):
    return sum(1 << bit for bit in range(width) if values[f"{name}{bit}"])


class TestAdders:
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_adder_exhaustive(self, width):
        netlist = build_adder(width)
        netlist.validate()
        for a, b in itertools.product(range(1 << width), repeat=2):
            assignment = {}
            drive_bus(assignment, "a", width, a)
            drive_bus(assignment, "b", width, b)
            values = evaluate_netlist(netlist, assignment)
            assert read_bus(values, "s", width) == (a + b) % (1 << width)

    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_subtractor_exhaustive(self, width):
        netlist = build_subtractor(width)
        for a, b in itertools.product(range(1 << width), repeat=2):
            assignment = {}
            drive_bus(assignment, "a", width, a)
            drive_bus(assignment, "b", width, b)
            values = evaluate_netlist(netlist, assignment)
            assert read_bus(values, "s", width) == (a - b) % (1 << width)

    def test_addsub_both_modes(self):
        width = 4
        netlist = build_addsub(width)
        for a, b, mode in itertools.product(range(16), range(16), (0, 1)):
            assignment = {"mode": bool(mode)}
            drive_bus(assignment, "a", width, a)
            drive_bus(assignment, "b", width, b)
            values = evaluate_netlist(netlist, assignment)
            expected = (a - b) % 16 if mode else (a + b) % 16
            assert read_bus(values, "s", width) == expected

    def test_zero_width_rejected(self):
        with pytest.raises(NetlistError):
            build_adder(0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_adder_width8_random(self, a, b):
        netlist = build_adder(8)
        assignment = {}
        drive_bus(assignment, "a", 8, a)
        drive_bus(assignment, "b", 8, b)
        values = evaluate_netlist(netlist, assignment)
        assert read_bus(values, "s", 8) == (a + b) % 256


class TestMultiplier:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_multiplier_exhaustive(self, width):
        netlist = build_multiplier(width)
        netlist.validate()
        for a, b in itertools.product(range(1 << width), repeat=2):
            assignment = {}
            drive_bus(assignment, "a", width, a)
            drive_bus(assignment, "b", width, b)
            values = evaluate_netlist(netlist, assignment)
            assert read_bus(values, "s", width) == (a * b) % (1 << width)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_multiplier_width6_random(self, a, b):
        netlist = build_multiplier(6)
        assignment = {}
        drive_bus(assignment, "a", 6, a)
        drive_bus(assignment, "b", 6, b)
        values = evaluate_netlist(netlist, assignment)
        assert read_bus(values, "s", 6) == (a * b) % 64


class TestMux:
    def test_select_width(self):
        assert select_width(1) == 1
        assert select_width(2) == 1
        assert select_width(3) == 2
        assert select_width(4) == 2
        assert select_width(5) == 3
        with pytest.raises(NetlistError):
            select_width(0)

    @pytest.mark.parametrize("n_inputs", [2, 3, 4, 5, 7, 8])
    def test_mux_selects_every_input(self, n_inputs):
        width = 3
        netlist = build_mux(n_inputs, width)
        netlist.validate()
        rng = random.Random(n_inputs)
        data = [rng.randrange(1 << width) for _ in range(n_inputs)]
        sel_bits = select_width(n_inputs)
        for index in range(n_inputs):
            assignment = {}
            for position, value in enumerate(data):
                drive_bus(assignment, f"d{position}_", width, value)
            for k in range(sel_bits):
                name = f"sel{k}"
                if name in netlist.inputs:
                    assignment[name] = bool((index >> k) & 1)
            values = evaluate_netlist(netlist, assignment)
            assert read_bus(values, "y", width) == data[index]

    def test_single_input_mux_is_wires(self):
        netlist = build_mux(1, 2)
        assert not any(name.startswith("sel") for name in netlist.inputs)
        assignment = {"d0_0": True, "d0_1": False}
        values = evaluate_netlist(netlist, assignment)
        assert values["y0"] is True and values["y1"] is False


class TestRegisterAndComparator:
    def test_register_structure(self):
        netlist = build_register(4)
        assert netlist.num_latches() == 4
        assert "en" in netlist.inputs
        netlist.validate()

    def test_register_without_enable(self):
        netlist = build_register(2, with_enable=False)
        assert "en" not in netlist.inputs
        assert netlist.num_latches() == 2

    def test_equality_comparator(self):
        width = 3
        netlist = build_equality_comparator(width)
        for a, b in itertools.product(range(8), repeat=2):
            assignment = {}
            drive_bus(assignment, "a", width, a)
            drive_bus(assignment, "b", width, b)
            values = evaluate_netlist(netlist, assignment)
            assert values["y0"] == (a == b)


class TestPartialDatapath:
    def test_structure_matches_figure2(self):
        netlist = build_partial_datapath("mult", 2, 3, 4)
        assert netlist.name == "mult_2_3"
        # Data inputs: 2 buses + 3 buses of width 4, plus selects.
        data_inputs = [n for n in netlist.inputs if "_d" in n]
        assert len(data_inputs) == (2 + 3) * 4
        assert any(n.startswith("a_sel") for n in netlist.inputs)
        assert any(n.startswith("b_sel") for n in netlist.inputs)
        netlist.validate()

    def test_functional_unit_dispatch(self):
        assert build_functional_unit("add", 2).name == "add"
        assert build_functional_unit("sub", 2).name == "sub"
        assert build_functional_unit("mult", 2).name == "mult"
        with pytest.raises(NetlistError):
            build_functional_unit("div", 2)

    def test_partial_datapath_computes_selected_sum(self):
        width = 3
        netlist = build_partial_datapath("add", 2, 2, width)
        rng = random.Random(9)
        data = {
            ("a", 0): 5, ("a", 1): 2, ("b", 0): 7, ("b", 1): 1,
        }
        for sel_a, sel_b in itertools.product((0, 1), repeat=2):
            assignment = {"a_sel0": bool(sel_a), "b_sel0": bool(sel_b)}
            for (port, position), value in data.items():
                drive_bus(assignment, f"{port}_d{position}_", width, value)
            values = evaluate_netlist(netlist, assignment)
            expected = (data[("a", sel_a)] + data[("b", sel_b)]) % 8
            assert read_bus(values, "s", width) == expected

    def test_unknown_fu_rejected(self):
        with pytest.raises(NetlistError):
            build_partial_datapath("nand", 1, 1, 4)
