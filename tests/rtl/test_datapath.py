"""Tests for datapath construction and its control table.

The key test replays the control table with a plain integer register
file and checks the primary outputs against the CDFG's arithmetic
semantics — exercising binding, mux source ordering and the control
table without any gate-level machinery.
"""

import random

import pytest

from repro.errors import RTLError
from repro.binding import HLPowerConfig, bind_hlpower, bind_lopass
from repro.cdfg import Schedule, benchmark_spec, figure1_example, load_benchmark
from repro.rtl import build_datapath
from repro.scheduling import list_schedule


def replay_control_table(datapath, pad_values):
    """Integer-level behavioural simulation of the control table."""
    mask = (1 << datapath.width) - 1
    registers = [0] * len(datapath.registers)
    fu_values = {}
    selects = {}
    modes = {}

    def source_value(ref):
        kind, index = ref
        if kind == "reg":
            return registers[index]
        if kind == "pad":
            return pad_values[index]
        return fu_values[index]

    for control in datapath.control:
        for fu_id, sel in control.fu_selects.items():
            selects[fu_id] = sel
        for fu_id, mode in control.fu_modes.items():
            modes[fu_id] = mode
        for spec in datapath.fus:
            sel = selects.get(spec.unit.fu_id)
            if sel is None:
                continue
            a = source_value(spec.mux_a.sources[sel[0]])
            b = source_value(spec.mux_b.sources[sel[1]])
            if spec.unit.fu_class == "mult":
                result = (a * b) & mask
            elif modes.get(spec.unit.fu_id, 0) == 1:
                result = (a - b) & mask
            else:
                result = (a + b) & mask
            fu_values[spec.unit.fu_id] = result
        updated = list(registers)
        for register, sel in control.reg_enables.items():
            source = datapath.registers[register].mux.sources[sel]
            updated[register] = source_value(source)
        registers = updated
    return [registers[r] for r in datapath.output_registers]


def golden(cdfg, pad_values, width):
    mask = (1 << width) - 1
    values = {}
    for position, var_id in enumerate(cdfg.primary_inputs):
        values[var_id] = pad_values[position]
    for op in cdfg.topological_order():
        a, b = values[op.inputs[0]], values[op.inputs[1]]
        if op.op_type == "add":
            values[op.output] = (a + b) & mask
        elif op.op_type == "sub":
            values[op.output] = (a - b) & mask
        else:
            values[op.output] = (a * b) & mask
    return [values[v] for v in cdfg.primary_outputs]


class TestConstruction:
    def test_figure1_structure(self, figure1_schedule, sa_table):
        solution = bind_hlpower(
            figure1_schedule,
            {"add": 2, "mult": 1},
            config=HLPowerConfig(sa_table=sa_table),
        )
        datapath = build_datapath(solution, width=8)
        assert len(datapath.fus) == 3
        assert len(datapath.registers) == solution.registers.n_registers
        assert datapath.n_steps == figure1_schedule.length
        assert len(datapath.output_registers) == 2

    def test_load_step_covers_all_inputs(self, figure1_schedule, sa_table):
        solution = bind_hlpower(
            figure1_schedule,
            {"add": 2, "mult": 1},
            config=HLPowerConfig(sa_table=sa_table),
        )
        datapath = build_datapath(solution, width=4)
        loaded = set(datapath.control[0].reg_enables)
        pi_regs = {
            solution.registers.register_of(v)
            for v in figure1_schedule.cdfg.primary_inputs
        }
        assert pi_regs <= loaded

    def test_invalid_width_rejected(self, figure1_schedule, sa_table):
        solution = bind_hlpower(
            figure1_schedule,
            {"add": 2, "mult": 1},
            config=HLPowerConfig(sa_table=sa_table),
        )
        with pytest.raises(RTLError):
            build_datapath(solution, width=0)

    def test_fu_of_lookup(self, figure1_schedule, sa_table):
        solution = bind_hlpower(
            figure1_schedule,
            {"add": 2, "mult": 1},
            config=HLPowerConfig(sa_table=sa_table),
        )
        datapath = build_datapath(solution, width=4)
        for op_id in figure1_schedule.cdfg.operations:
            spec = datapath.fu_of(op_id)
            assert op_id in spec.unit.ops


class TestBehaviouralReplay:
    @pytest.mark.parametrize("binder", ["hlpower", "lopass"])
    def test_figure1_replay_matches_golden(
        self, figure1_schedule, sa_table, binder
    ):
        if binder == "hlpower":
            solution = bind_hlpower(
                figure1_schedule,
                {"add": 2, "mult": 1},
                config=HLPowerConfig(sa_table=sa_table),
            )
        else:
            solution = bind_lopass(figure1_schedule, {"add": 2, "mult": 1})
        datapath = build_datapath(solution, width=8)
        rng = random.Random(11)
        cdfg = figure1_schedule.cdfg
        for _ in range(25):
            pads = [rng.randrange(256) for _ in cdfg.primary_inputs]
            assert replay_control_table(datapath, pads) == golden(
                cdfg, pads, 8
            )

    @pytest.mark.parametrize("name", ["pr", "wang"])
    def test_benchmark_replay_matches_golden(self, name, sa_table):
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        solution = bind_hlpower(
            schedule,
            spec.constraints,
            config=HLPowerConfig(sa_table=sa_table),
        )
        datapath = build_datapath(solution, width=8)
        rng = random.Random(13)
        cdfg = schedule.cdfg
        for _ in range(10):
            pads = [rng.randrange(256) for _ in cdfg.primary_inputs]
            assert replay_control_table(datapath, pads) == golden(
                cdfg, pads, 8
            )

    def test_sub_operations_replay(self, sa_table):
        from repro.cdfg.graph import CDFG

        cdfg = CDFG("subtest")
        a = cdfg.add_input()
        b = cdfg.add_input()
        t1 = cdfg.add_operation("sub", a, b)
        t2 = cdfg.add_operation("add", t1, a)
        t3 = cdfg.add_operation("sub", t2, t1)
        cdfg.mark_output(t3)
        schedule = Schedule(cdfg, {0: 1, 1: 2, 2: 3})
        solution = bind_hlpower(
            schedule, {"add": 1, "mult": 1},
            config=HLPowerConfig(sa_table=sa_table),
        )
        datapath = build_datapath(solution, width=6)
        rng = random.Random(3)
        for _ in range(20):
            pads = [rng.randrange(64) for _ in cdfg.primary_inputs]
            assert replay_control_table(datapath, pads) == golden(
                cdfg, pads, 6
            )
