"""Tests for the multiplexer statistics (Tables 3/4 metrics)."""

import pytest

from repro.binding import HLPowerConfig, bind_hlpower
from repro.cdfg import benchmark_spec, load_benchmark
from repro.rtl import mux_report
from repro.scheduling import list_schedule


@pytest.fixture()
def figure1_solution(figure1_schedule, sa_table):
    return bind_hlpower(
        figure1_schedule,
        {"add": 2, "mult": 1},
        config=HLPowerConfig(sa_table=sa_table),
    )


class TestMuxReport:
    def test_one_diff_per_allocated_fu(self, figure1_solution):
        report = mux_report(figure1_solution)
        assert report.n_fus == 3  # Table 4's "# muxes" convention

    def test_diffs_match_sizes(self, figure1_solution):
        report = mux_report(figure1_solution)
        for (size_a, size_b), diff in zip(
            report.fu_mux_sizes, report.mux_diffs
        ):
            assert diff == abs(size_a - size_b)

    def test_largest_covers_fu_and_register_muxes(self, figure1_solution):
        report = mux_report(figure1_solution)
        max_fu = max(max(a, b) for a, b in report.fu_mux_sizes)
        assert report.largest_mux >= max_fu

    def test_single_source_ports_are_wires(self, figure1_solution):
        report = mux_report(figure1_solution)
        manual = sum(
            size
            for pair in report.fu_mux_sizes
            for size in pair
            if size > 1
        )
        assert report.fu_mux_length == manual

    def test_length_decomposition(self, figure1_solution):
        report = mux_report(figure1_solution)
        assert report.mux_length == (
            report.fu_mux_length + report.register_mux_length
        )

    def test_mean_and_variance(self, figure1_solution):
        report = mux_report(figure1_solution)
        diffs = report.mux_diffs
        mean = sum(diffs) / len(diffs)
        assert report.mux_diff_mean == pytest.approx(mean)
        variance = sum((d - mean) ** 2 for d in diffs) / len(diffs)
        assert report.mux_diff_variance == pytest.approx(variance)

    def test_benchmark_report_consistency(self, sa_table):
        spec = benchmark_spec("pr")
        schedule = list_schedule(load_benchmark("pr"), spec.constraints)
        solution = bind_hlpower(
            schedule,
            spec.constraints,
            config=HLPowerConfig(sa_table=sa_table),
        )
        report = mux_report(solution)
        assert report.n_fus == sum(spec.constraints.values())
        assert report.largest_mux >= 2
        assert report.mux_length > 0

    def test_empty_solution(self):
        from repro.binding.base import (
            BindingSolution,
            FUBinding,
            PortAssignment,
            RegisterBinding,
        )
        from repro.cdfg.graph import CDFG
        from repro.cdfg.schedule import Schedule

        cdfg = CDFG()
        cdfg.add_input()
        solution = BindingSolution(
            Schedule(cdfg, {}),
            RegisterBinding(0, {}),
            PortAssignment({}),
            FUBinding([]),
        )
        report = mux_report(solution)
        assert report.mux_diff_mean == 0.0
        assert report.mux_diff_variance == 0.0
        assert report.mux_length == 0
