"""Tests for the FSM controller description."""

import pytest

from repro.binding import HLPowerConfig, bind_hlpower
from repro.rtl import build_datapath, build_controller


@pytest.fixture()
def figure1_datapath(figure1_schedule, sa_table):
    solution = bind_hlpower(
        figure1_schedule,
        {"add": 2, "mult": 1},
        config=HLPowerConfig(sa_table=sa_table),
    )
    return build_datapath(solution, width=4)


class TestSignals:
    def test_every_register_has_enable(self, figure1_datapath):
        controller = build_controller(figure1_datapath)
        names = {sig.name for sig in controller.signals}
        for reg in figure1_datapath.registers:
            assert f"reg{reg.index}_en" in names

    def test_single_source_muxes_have_no_select(self, figure1_datapath):
        controller = build_controller(figure1_datapath)
        names = {sig.name for sig in controller.signals}
        for spec in figure1_datapath.fus:
            for port, mux in (("a", spec.mux_a), ("b", spec.mux_b)):
                signal = f"fu{spec.unit.fu_id}_sel_{port}"
                assert (signal in names) == (mux.size > 1)

    def test_select_widths(self, figure1_datapath):
        controller = build_controller(figure1_datapath)
        for sig in controller.signals:
            if sig.name.endswith("_en"):
                assert sig.width == 1

    def test_state_bits_cover_steps(self, figure1_datapath):
        controller = build_controller(figure1_datapath)
        assert (1 << controller.state_bits) >= controller.n_steps

    def test_signal_lookup(self, figure1_datapath):
        controller = build_controller(figure1_datapath)
        name = controller.signals[0].name
        assert controller.signal(name).name == name
        with pytest.raises(KeyError):
            controller.signal("nonexistent")


class TestResolution:
    def test_zero_policy_zeroes_idle_steps(self, figure1_datapath):
        controller = build_controller(figure1_datapath)
        resolved = controller.resolved("zero")
        for sig in controller.signals:
            values = resolved[sig.name]
            assert len(values) == controller.n_steps
            for raw, cooked in zip(sig.values, values):
                if raw is None:
                    assert cooked == 0

    def test_hold_policy_repeats_last_value(self, figure1_datapath):
        controller = build_controller(figure1_datapath)
        resolved = controller.resolved("hold")
        for sig in controller.signals:
            last = 0
            for raw, cooked in zip(sig.values, resolved[sig.name]):
                if raw is not None:
                    last = raw
                assert cooked == last

    def test_unknown_policy_rejected(self, figure1_datapath):
        controller = build_controller(figure1_datapath)
        with pytest.raises(ValueError):
            controller.resolved("random")


class TestAreaEstimate:
    def test_positive_and_scales_with_signals(self, figure1_datapath):
        controller = build_controller(figure1_datapath)
        estimate = controller.estimated_luts()
        assert estimate > 0
        assert estimate >= controller.state_bits
