"""Structural checks on the emitted VHDL."""

import re

import pytest

from repro.binding import HLPowerConfig, bind_hlpower
from repro.rtl import build_datapath, emit_vhdl


@pytest.fixture()
def figure1_vhdl(figure1_schedule, sa_table):
    solution = bind_hlpower(
        figure1_schedule,
        {"add": 2, "mult": 1},
        config=HLPowerConfig(sa_table=sa_table),
    )
    datapath = build_datapath(solution, width=8)
    return datapath, emit_vhdl(datapath, entity="fig1")


class TestStructure:
    def test_entity_declaration(self, figure1_vhdl):
        _, text = figure1_vhdl
        assert "entity fig1 is" in text
        assert "end entity fig1;" in text
        assert "architecture rtl of fig1 is" in text
        assert "end architecture rtl;" in text

    def test_ports_present(self, figure1_vhdl):
        datapath, text = figure1_vhdl
        assert "clk   : in  std_logic;" in text
        for position in range(len(datapath.cdfg.primary_inputs)):
            assert f"pi{position} : in" in text
        for position in range(len(datapath.output_registers)):
            assert f"po{position} : out" in text
        assert "done  : out std_logic" in text

    def test_width_consistent(self, figure1_vhdl):
        datapath, text = figure1_vhdl
        expected = f"std_logic_vector({datapath.width - 1} downto 0)"
        assert expected in text

    def test_every_register_declared_and_clocked(self, figure1_vhdl):
        datapath, text = figure1_vhdl
        for reg in datapath.registers:
            assert f"signal reg{reg.index} :" in text
            assert f"if reg{reg.index}_en = '1' then" in text

    def test_every_fu_has_expression(self, figure1_vhdl):
        datapath, text = figure1_vhdl
        for spec in datapath.fus:
            fu = spec.unit.fu_id
            assert f"fu{fu}_y <=" in text
            if spec.unit.fu_class == "mult":
                assert f"resize(fu{fu}_a * fu{fu}_b" in text

    def test_processes_balanced(self, figure1_vhdl):
        _, text = figure1_vhdl
        assert text.count("process") % 2 == 0  # begin/end paired
        assert text.count("rising_edge(clk)") == 2  # FSM + registers

    def test_fsm_counts_states(self, figure1_vhdl):
        datapath, text = figure1_vhdl
        last_state = len(datapath.control) - 1
        assert f"state = {last_state}" in text
        assert "state <= state + 1;" in text

    def test_if_end_if_balanced(self, figure1_vhdl):
        _, text = figure1_vhdl
        opens = len(re.findall(r"(?<!els)\bif\b.*\bthen\b", text))
        closes = text.count("end if;")
        assert opens == closes

    def test_addsub_unit_emits_mode(self, sa_table):
        from repro.cdfg.graph import CDFG
        from repro.cdfg.schedule import Schedule

        cdfg = CDFG("modes")
        a = cdfg.add_input()
        b = cdfg.add_input()
        t1 = cdfg.add_operation("add", a, b)
        t2 = cdfg.add_operation("sub", t1, a)
        cdfg.mark_output(t2)
        schedule = Schedule(cdfg, {0: 1, 1: 2})
        solution = bind_hlpower(
            schedule, {"add": 1, "mult": 1},
            config=HLPowerConfig(sa_table=sa_table),
        )
        datapath = build_datapath(solution, width=4)
        text = emit_vhdl(datapath)
        assert "fu0_mode" in text
        assert "when fu0_mode = '1'" in text
