"""Tests for the resource-constrained list scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ResourceError
from repro.cdfg import benchmark_spec, load_benchmark
from repro.cdfg.generate import GraphProfile, generate_cdfg
from repro.scheduling import asap_schedule, list_schedule


class TestConstraints:
    def test_constraints_respected(self):
        cdfg = load_benchmark("pr")
        schedule = list_schedule(cdfg, {"add": 2, "mult": 2})
        assert schedule.respects({"add": 2, "mult": 2})

    def test_tighter_constraints_lengthen_schedule(self):
        cdfg = load_benchmark("wang")
        loose = list_schedule(cdfg, {"add": 4, "mult": 4})
        tight = list_schedule(cdfg, {"add": 1, "mult": 1})
        assert tight.length > loose.length
        assert tight.respects({"add": 1, "mult": 1})

    def test_length_at_least_critical_path(self):
        cdfg = load_benchmark("honda")
        schedule = list_schedule(cdfg, {"add": 99, "mult": 99})
        assert schedule.length == asap_schedule(cdfg).length

    def test_missing_constraint_rejected(self):
        cdfg = load_benchmark("pr")
        with pytest.raises(ResourceError):
            list_schedule(cdfg, {"add": 2})

    def test_zero_constraint_rejected(self):
        cdfg = load_benchmark("pr")
        with pytest.raises(ResourceError):
            list_schedule(cdfg, {"add": 0, "mult": 1})

    def test_deterministic(self):
        cdfg = load_benchmark("wang")
        first = list_schedule(cdfg, {"add": 2, "mult": 2})
        second = list_schedule(cdfg, {"add": 2, "mult": 2})
        assert first.start == second.start


class TestMultiCycle:
    def test_multicycle_occupies_unit(self):
        cdfg = load_benchmark("pr")
        schedule = list_schedule(
            cdfg, {"add": 2, "mult": 2}, latencies={"add": 1, "mult": 2}
        )
        schedule.validate()
        assert schedule.respects({"add": 2, "mult": 2})

    def test_multicycle_lengthens(self):
        cdfg = load_benchmark("pr")
        single = list_schedule(cdfg, {"add": 2, "mult": 2})
        multi = list_schedule(
            cdfg, {"add": 2, "mult": 2}, latencies={"add": 1, "mult": 3}
        )
        assert multi.length > single.length


class TestProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100), st.integers(1, 3), st.integers(1, 3))
    def test_random_graphs_schedule_validly(self, seed, adders, mults):
        profile = GraphProfile("prop", 4, 2, 12, 8)
        cdfg = generate_cdfg(profile, seed=seed)
        schedule = list_schedule(cdfg, {"add": adders, "mult": mults})
        schedule.validate()
        assert schedule.respects({"add": adders, "mult": mults})

    def test_paper_constraints_reach_paper_cycles(self):
        for name in ("pr", "wang", "honda", "mcm", "chem", "steam", "dir"):
            spec = benchmark_spec(name)
            schedule = list_schedule(load_benchmark(name), spec.constraints)
            assert schedule.length == spec.paper_cycles, name
