"""Tests for ASAP/ALAP scheduling and mobility."""

import pytest

from repro.errors import ScheduleError
from repro.cdfg import load_benchmark
from repro.cdfg.graph import CDFG
from repro.scheduling import alap_schedule, asap_schedule, mobility


def diamond() -> CDFG:
    cdfg = CDFG()
    a = cdfg.add_input()
    b = cdfg.add_input()
    t1 = cdfg.add_operation("add", a, b)
    t2 = cdfg.add_operation("mult", t1, a)
    t3 = cdfg.add_operation("add", t1, b)
    t4 = cdfg.add_operation("add", t2, t3)
    cdfg.mark_output(t4)
    return cdfg


class TestAsap:
    def test_chain_depths(self):
        cdfg = diamond()
        schedule = asap_schedule(cdfg)
        assert schedule.start[0] == 1
        assert schedule.start[1] == 2
        assert schedule.start[2] == 2
        assert schedule.start[3] == 3

    def test_multicycle_pushes_successors(self):
        cdfg = diamond()
        schedule = asap_schedule(cdfg, {"add": 1, "mult": 2})
        assert schedule.start[3] == 4  # waits for the 2-cycle mult

    def test_valid(self):
        asap_schedule(load_benchmark("pr")).validate()


class TestAlap:
    def test_defaults_to_critical_path(self):
        cdfg = diamond()
        asap = asap_schedule(cdfg)
        alap = alap_schedule(cdfg)
        assert alap.length == asap.length

    def test_slack_distributed_to_start(self):
        cdfg = diamond()
        alap = alap_schedule(cdfg, length=5)
        assert alap.start[3] == 5
        assert alap.start[0] == 3

    def test_too_short_rejected(self):
        cdfg = diamond()
        with pytest.raises(ScheduleError):
            alap_schedule(cdfg, length=2)

    def test_alap_at_least_asap(self):
        cdfg = load_benchmark("wang")
        asap = asap_schedule(cdfg)
        alap = alap_schedule(cdfg, length=asap.length + 3)
        for op_id in asap.start:
            assert alap.start[op_id] >= asap.start[op_id]


class TestMobility:
    def test_critical_ops_have_zero_mobility(self):
        cdfg = diamond()
        slack = mobility(cdfg)
        assert slack[0] == 0
        assert slack[3] == 0

    def test_mobility_grows_with_length(self):
        cdfg = diamond()
        tight = mobility(cdfg)
        loose = mobility(cdfg, length=6)
        assert all(loose[op] >= tight[op] for op in tight)
        assert any(loose[op] > tight[op] for op in tight)

    def test_all_nonnegative(self):
        cdfg = load_benchmark("pr")
        assert all(v >= 0 for v in mobility(cdfg).values())
