"""Tests for force-directed scheduling."""

import pytest

from repro.cdfg import load_benchmark
from repro.scheduling import (
    asap_schedule,
    force_directed_schedule,
    list_schedule,
)


class TestForceDirected:
    def test_valid_at_critical_path(self):
        cdfg = load_benchmark("pr")
        schedule = force_directed_schedule(cdfg)
        schedule.validate()
        assert schedule.length <= asap_schedule(cdfg).length

    def test_valid_with_slack(self):
        cdfg = load_benchmark("pr")
        target = asap_schedule(cdfg).length + 4
        schedule = force_directed_schedule(cdfg, length=target)
        schedule.validate()
        assert schedule.length <= target

    def test_slack_reduces_peak_concurrency(self):
        """Extra latency budget lets force-directed flatten the
        distribution, lowering the per-class FU lower bound."""
        cdfg = load_benchmark("wang")
        tight = force_directed_schedule(cdfg)
        loose = force_directed_schedule(
            cdfg, length=asap_schedule(cdfg).length + 6
        )
        tight_peak = sum(tight.min_resources().values())
        loose_peak = sum(loose.min_resources().values())
        assert loose_peak <= tight_peak

    def test_no_worse_than_asap_peak(self):
        cdfg = load_benchmark("pr")
        asap = asap_schedule(cdfg)
        fd = force_directed_schedule(cdfg, length=asap.length + 2)
        asap_peak = sum(asap.min_resources().values())
        fd_peak = sum(fd.min_resources().values())
        assert fd_peak <= asap_peak

    def test_deterministic(self):
        cdfg = load_benchmark("pr")
        first = force_directed_schedule(cdfg)
        second = force_directed_schedule(cdfg)
        assert first.start == second.start

    def test_feeds_binding_pipeline(self):
        """A force-directed schedule is a valid binder input."""
        from repro.binding import bind_lopass

        cdfg = load_benchmark("pr")
        schedule = force_directed_schedule(
            cdfg, length=asap_schedule(cdfg).length + 2
        )
        constraints = schedule.min_resources()
        solution = bind_lopass(schedule, constraints)
        solution.validate()
