"""Cross-subcommand consistency of the shared CLI flags.

``--sa-table``, ``--jobs``, ``--map-effort``, ``--bind-engine`` and
``--elab-engine`` appear on several subcommands; they are declared once in shared
helpers (see :mod:`repro.cli`), and these tests pin that a subcommand
cannot silently drift to different defaults or accept values its
siblings reject.
"""

import argparse

import pytest

from repro.binding import BIND_ENGINES
from repro.cli import SIM_KERNELS, build_parser
from repro.flow import SweepSpec
from repro.fpga import ELAB_ENGINES
from repro.techmap import MAP_EFFORTS

#: Subcommands carrying each shared flag.
SHARED_FLAGS = {
    "--sa-table": ("bench", "suite", "sweep", "estimate", "corpus",
                   "serve"),
    "--jobs": ("bench", "suite", "sweep", "estimate", "corpus", "serve"),
    "--map-effort": ("bench", "suite", "sweep", "estimate", "corpus"),
    "--bind-engine": ("bench", "suite", "sweep", "estimate", "corpus"),
    "--elab-engine": ("bench", "suite", "sweep", "estimate", "corpus"),
    "--mcts-budget": ("bench", "suite", "sweep", "estimate", "corpus",
                      "synth"),
    "--mcts-seed": ("bench", "suite", "sweep", "estimate", "corpus",
                    "synth"),
}

#: Subcommands where the flag is a comma-separated grid axis rather
#: than a scalar choice.
AXIS_SUBCOMMANDS = {"sweep"}


def _subparsers(parser):
    action = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    return action.choices


def _flag_action(subparser, flag):
    for action in subparser._actions:
        if flag in action.option_strings:
            return action
    raise AssertionError(f"{flag} missing")


@pytest.fixture(scope="module")
def commands():
    return _subparsers(build_parser())


@pytest.mark.parametrize("flag", sorted(SHARED_FLAGS))
def test_flag_present_with_identical_default(commands, flag):
    defaults = {}
    for name in SHARED_FLAGS[flag]:
        defaults[name] = _flag_action(commands[name], flag).default
    assert len(set(defaults.values())) == 1, defaults


@pytest.mark.parametrize(
    "flag, choices",
    [("--map-effort", MAP_EFFORTS), ("--bind-engine", BIND_ENGINES),
     ("--elab-engine", ELAB_ENGINES)],
)
def test_choice_flags_share_vocabulary(commands, flag, choices):
    for name in SHARED_FLAGS[flag]:
        action = _flag_action(commands[name], flag)
        if name in AXIS_SUBCOMMANDS:
            # Axis flags validate through their type callable: every
            # canonical choice parses, anything else is rejected.
            assert action.type(",".join(choices)) == list(choices)
            with pytest.raises(argparse.ArgumentTypeError):
                action.type("bogus")
            with pytest.raises(argparse.ArgumentTypeError):
                action.type(",")
        else:
            assert tuple(action.choices) == tuple(choices)


def test_sim_kernel_axis_on_sweep(commands):
    action = _flag_action(commands["sweep"], "--sim-kernel")
    assert action.default == "event"
    assert action.type(",".join(SIM_KERNELS)) == list(SIM_KERNELS)
    with pytest.raises(argparse.ArgumentTypeError):
        action.type("quantum")


def test_axis_defaults_parse_to_single_value(commands):
    # argparse runs string defaults through `type`, so the default of
    # an axis flag must itself be a valid axis.
    for flag in ("--sim-kernel", "--map-effort", "--bind-engine",
                 "--elab-engine"):
        action = _flag_action(commands["sweep"], flag)
        assert action.type(action.default) == [action.default]


def test_sweep_sim_batch_flag(commands):
    action = _flag_action(commands["sweep"], "--sim-batch")
    assert action.default == SweepSpec.sim_batch
    assert action.type is int


def test_mcts_flag_defaults_match_sweep_spec(commands):
    # The CLI defaults and the SweepSpec/FlowConfig defaults must be
    # the same numbers, or `repro sweep` and a hand-built spec would
    # fingerprint (and cache) differently.
    for name in SHARED_FLAGS["--mcts-budget"]:
        budget = _flag_action(commands[name], "--mcts-budget")
        seed = _flag_action(commands[name], "--mcts-seed")
        assert budget.default == SweepSpec.mcts_budget
        assert seed.default == SweepSpec.mcts_seed
        assert budget.type is int and seed.type is int


def test_parsed_namespaces_agree():
    parser = build_parser()
    sweep = parser.parse_args(["sweep"])
    estimate = parser.parse_args(["estimate"])
    corpus = parser.parse_args(["corpus"])
    bench = parser.parse_args(["bench", "chem"])
    assert (sweep.sa_table == estimate.sa_table == corpus.sa_table
            == bench.sa_table)
    assert sweep.jobs == estimate.jobs == corpus.jobs == bench.jobs == 1
    # Axis flags resolve to one-element lists of the scalar default.
    assert sweep.map_effort == [estimate.map_effort] == [bench.map_effort]
    assert sweep.bind_engine == [estimate.bind_engine] == [corpus.bind_engine]
    assert sweep.elab_engine == [estimate.elab_engine] == [corpus.elab_engine]
    assert sweep.sim_kernel == ["event"]
    assert sweep.sim_batch == SweepSpec.sim_batch
