#!/usr/bin/env python3
"""Synthesize a hand-written FIR filter kernel down to VHDL.

Shows the library on a *user-defined* CDFG rather than a paper
benchmark: an 8-tap FIR filter (y = sum c_i * x_i), scheduled with
force-directed scheduling (the paper's future-work integration),
bound with HLPower, and emitted as synthesizable VHDL.

Run:  python examples/custom_fir_kernel.py > fir.vhd
"""

import sys

from repro import (
    CDFG,
    HLPowerConfig,
    bind_hlpower,
    build_datapath,
    emit_vhdl,
    force_directed_schedule,
)
from repro.binding import SATable
from repro.rtl import mux_report

TAPS = 8


def build_fir(taps: int) -> CDFG:
    """y = sum_i coeff_i * sample_i as a balanced adder tree."""
    cdfg = CDFG(f"fir{taps}")
    samples = [cdfg.add_input(f"x{i}") for i in range(taps)]
    coeffs = [cdfg.add_input(f"c{i}") for i in range(taps)]
    products = [
        cdfg.add_operation("mult", samples[i], coeffs[i], f"p{i}")
        for i in range(taps)
    ]
    level = products
    while len(level) > 1:
        next_level = []
        for k in range(0, len(level) - 1, 2):
            next_level.append(
                cdfg.add_operation("add", level[k], level[k + 1])
            )
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    cdfg.mark_output(level[0])
    cdfg.validate()
    return cdfg


def main() -> None:
    cdfg = build_fir(TAPS)
    print(f"-- FIR kernel: {cdfg}", file=sys.stderr)

    # Force-directed scheduling balances per-step concurrency, which
    # directly lowers the binder's minimum allocation (Theorem 1).
    schedule = force_directed_schedule(cdfg, length=6)
    constraints = schedule.min_resources()
    print(
        f"-- force-directed schedule: {schedule.length} steps, "
        f"allocation bound {constraints}",
        file=sys.stderr,
    )

    solution = bind_hlpower(
        schedule, constraints, config=HLPowerConfig(sa_table=SATable())
    )
    report = mux_report(solution)
    print(
        f"-- bound: {solution.fus.allocation()}, largest mux "
        f"{report.largest_mux}, muxDiff mean {report.mux_diff_mean:.2f}",
        file=sys.stderr,
    )

    datapath = build_datapath(solution, width=12)
    print(emit_vhdl(datapath, entity=f"fir{TAPS}"))


if __name__ == "__main__":
    main()
