#!/usr/bin/env python3
"""External-design tour: validate, bit-blast and estimate a module.

Loads the word-level multiply-accumulate next to this script
(``mac4.json``, the ``repro-module-v1`` format documented in
docs/ingest.md), lowers it onto the gate library, and runs the
estimate flow twice against one artifact cache to show the
content-addressed warm path.

The same design runs from the command line

    python -m repro estimate --design examples/mac4.json

and against a live daemon

    curl -X POST http://localhost:8791/ingest \
        -d "{\"design\": $(cat examples/mac4.json), \"name\": \"mac4\"}"

with byte-identical metrics in all three places.

Run:  python examples/ingest_design.py
"""

import os

from repro.flow.cache import ArtifactCache
from repro.ingest import (
    bit_blast,
    load_design,
    parse_module,
    run_design_estimate,
)

HERE = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    path = os.path.join(HERE, "mac4.json")
    with open(path, "r", encoding="utf-8") as stream:
        module = parse_module(stream.read())
    print(f"validated module {module.name!r}: "
          f"{len(module.signals)} signals, {len(module.ops)} ops")

    elaborated = bit_blast(module)
    print(f"bit-blasted: {elaborated.netlist.num_gates()} gates, "
          f"{len(elaborated.netlist.latches)} latches, "
          f"control nets {list(elaborated.control_nets)}")

    design = load_design(path)
    cache = ArtifactCache(64)
    cold = run_design_estimate(design, cache=cache)
    warm = run_design_estimate(design, cache=cache)
    assert cold.metrics() == warm.metrics()
    print(f"estimate: SA {cold.estimated_sa:.4f} "
          f"(glitch {cold.metrics()['glitch_fraction']:.1%}), "
          f"{cold.metrics()['area_luts']} LUTs, "
          f"clock {cold.metrics()['clock_period_ns']:.2f} ns")
    print(f"warm run hit stages: {warm.cache_hits}")


if __name__ == "__main__":
    main()
