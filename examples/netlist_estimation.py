#!/usr/bin/env python3
"""Gate-level tour: build, estimate, map and export a partial datapath.

Works entirely at the netlist layer (no CDFG): builds the paper's
Figure 2 structure — two input multiplexers feeding a multiplier —
runs the glitch-aware switching-activity estimator on it, maps it to
4-LUTs with the GlitchMap-style mapper, compares estimates, and writes
the BLIF the paper's flow would pass around.

Run:  python examples/netlist_estimation.py
"""

from repro.activity import estimate_switching_activity
from repro.netlist import build_partial_datapath
from repro.netlist.blif import blif_text
from repro.netlist.transform import clean
from repro.techmap import map_netlist


def main() -> None:
    # Figure 2: a 2-input and a 3-input mux feeding a 4-bit multiplier.
    netlist = build_partial_datapath("mult", 2, 3, width=4)
    print(f"built {netlist}")
    folded, buffers, dead = clean(netlist)
    print(
        f"cleaned: {folded} constants folded, {buffers} buffers, "
        f"{dead} dead gates -> {netlist.num_gates()} gates"
    )

    # Glitch-aware vs zero-delay estimation (Section 4).
    aware = estimate_switching_activity(netlist, glitch_aware=True)
    blind = estimate_switching_activity(netlist, glitch_aware=False)
    print(f"\nzero-delay estimated SA:    {blind.total:8.2f}")
    print(f"glitch-aware estimated SA:  {aware.total:8.2f}")
    print(f"  functional component:     {aware.functional:8.2f}")
    print(f"  glitch component:         {aware.glitch:8.2f} "
          f"({aware.glitch_fraction:.1%} of total)")

    # Technology mapping to 4-LUTs, minimizing glitch-aware SA.
    result = map_netlist(netlist, k=4)
    print(f"\nmapped to {result.area} LUTs, depth {result.depth} levels")
    print(f"mapped-netlist SA (Eq. 3): {result.total_sa:.2f} "
          f"(glitch {result.glitch_fraction:.1%})")

    # The five highest-activity LUTs.
    hottest = sorted(
        result.lut_sa.items(), key=lambda item: -item[1]
    )[:5]
    print("\nhottest LUTs:")
    for net, activity in hottest:
        print(f"  {net:30s} SA {activity:.3f}")

    # BLIF export (what Figure 2 generates for the estimator).
    text = blif_text(result.netlist)
    print(f"\nBLIF of the mapped netlist ({len(text.splitlines())} lines), "
          "first 12 lines:")
    for line in text.splitlines()[:12]:
        print("  " + line)


if __name__ == "__main__":
    main()
