#!/usr/bin/env python3
"""Quickstart: bind the paper's Figure 1 example with HLPower.

Builds the 8-operation scheduled CDFG from Figure 1, runs register
binding and the iterative HLPower functional-unit binding, and prints
the resulting allocation — which matches the figure: two adders and
one multiplier — along with each unit's input multiplexer sizes.

Run:  python examples/quickstart.py
"""

from repro import HLPowerConfig, Schedule, bind_hlpower, figure1_example
from repro.binding import SATable
from repro.cdfg.dot import cdfg_to_dot
from repro.rtl import mux_report


def main() -> None:
    # 1. The scheduled CDFG of Figure 1 (3 control steps).
    cdfg, start_times = figure1_example()
    schedule = Schedule(cdfg, start_times)
    print(f"CDFG: {cdfg}")
    print(f"schedule length: {schedule.length} control steps")
    print(f"minimum feasible allocation: {schedule.min_resources()}")
    print()

    # 2. Bind. The SA table precalculates glitch-aware switching
    #    activities for every (FU, mux, mux) combination on demand.
    table = SATable()
    solution = bind_hlpower(
        schedule,
        constraints={"add": 2, "mult": 1},
        config=HLPowerConfig(alpha=0.5, sa_table=table),
    )
    solution.validate()

    # 3. Inspect the result.
    print(f"allocation: {solution.fus.allocation()} "
          f"(constraint met: {solution.fus.constraint_met})")
    for unit in solution.fus.units:
        ops = ", ".join(
            cdfg.operations[op_id].name for op_id in sorted(unit.ops)
        )
        size_a, size_b = solution.mux_sizes(unit)
        print(
            f"  {unit.fu_class:4s} unit {unit.fu_id}: ops [{ops}] "
            f"input muxes {size_a}x{size_b} (muxDiff "
            f"{abs(size_a - size_b)})"
        )
    report = mux_report(solution)
    print(
        f"largest mux: {report.largest_mux}, mux length: "
        f"{report.mux_length}, muxDiff mean: {report.mux_diff_mean:.2f}"
    )
    print(f"\nSA table entries computed: {len(table)}")
    print("\nGraphviz of the scheduled CDFG (paste into `dot -Tpng`):")
    print(cdfg_to_dot(cdfg, schedule))


if __name__ == "__main__":
    main()
