#!/usr/bin/env python3
"""DCT benchmark comparison: LOPASS vs HLPower through the full flow.

Reproduces one row of the paper's Table 3 on the ``pr`` DCT benchmark:
both binders run on the identical schedule, register binding and port
assignment; the bound datapaths are elaborated to gates, mapped to
4-LUTs, and simulated with random vectors on the virtual Cyclone II
flow. Prints dynamic power, toggle rate, area, clock period and the
multiplexer statistics side by side.

Run:  python examples/dct_comparison.py [benchmark] [width]
"""

import sys

from repro import (
    FlowConfig,
    benchmark_spec,
    compare_binders,
    list_schedule,
    load_benchmark,
)
from repro.binding import SATable
from repro.flow import format_table, percent_change


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "pr"
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    spec = benchmark_spec(name)
    print(
        f"benchmark {name}: {spec.profile.n_adds} adds, "
        f"{spec.profile.n_mults} mults, constraints {spec.constraints}"
    )
    cdfg = load_benchmark(name)
    schedule = list_schedule(cdfg, spec.constraints)
    print(
        f"scheduled in {schedule.length} steps "
        f"(paper: {spec.paper_cycles})"
    )

    table = SATable(path="data/sa_table.txt")
    config = FlowConfig(width=width, n_vectors=256, sa_table=table)
    results = compare_binders(schedule, spec.constraints, config)
    table.save_if_dirty()

    lo, hl = results["lopass"], results["hlpower"]
    rows = []
    for label, metric in [
        ("dynamic power (mW)", lambda r: f"{r.power.dynamic_power_mw:.2f}"),
        ("toggle rate (M/s/signal)",
         lambda r: f"{r.power.toggle_rate_mhz:.2f}"),
        ("LUTs", lambda r: r.area_luts),
        ("clock period (ns)", lambda r: f"{r.timing.clock_period_ns:.1f}"),
        ("largest mux", lambda r: r.muxes.largest_mux),
        ("mux length", lambda r: r.muxes.mux_length),
        ("muxDiff mean", lambda r: f"{r.muxes.mux_diff_mean:.2f}"),
        ("estimated SA (Eq. 3)", lambda r: f"{r.mapping.total_sa:.0f}"),
        ("glitch fraction (est.)",
         lambda r: f"{r.mapping.glitch_fraction:.1%}"),
    ]:
        rows.append([label, metric(lo), metric(hl)])
    print()
    print(format_table(["metric", "LOPASS", "HLPower a=0.5"], rows))
    print()
    delta = percent_change(
        lo.power.dynamic_power_mw, hl.power.dynamic_power_mw
    )
    print(f"dynamic power change: {delta:+.2f}% "
          f"(paper {name}: see Table 3)")
    print("functional verification: both bindings matched the CDFG's "
          "arithmetic on every vector.")


if __name__ == "__main__":
    main()
