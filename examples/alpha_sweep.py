#!/usr/bin/env python3
"""Sweep Equation (4)'s alpha and plot the power/balance trade-off.

alpha = 1 weighs only the glitch-aware SA estimate; alpha = 0 only the
multiplexer-balance term. The paper picks 0.5 (Table 3) after finding
SA alone gives -6.5% power and the combination -19.3%. This example
sweeps alpha on one benchmark and prints the measured dynamic power,
mux balance, and area for each setting as an ASCII chart.

Run:  python examples/alpha_sweep.py [benchmark]
"""

import sys

from repro import (
    FlowConfig,
    benchmark_spec,
    list_schedule,
    load_benchmark,
    run_flow,
)
from repro.binding import SATable, assign_ports, bind_registers


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "wang"
    spec = benchmark_spec(name)
    schedule = list_schedule(load_benchmark(name), spec.constraints)
    registers = bind_registers(schedule)
    ports = assign_ports(schedule.cdfg)
    table = SATable(path="data/sa_table.txt")

    print(f"alpha sweep on {name} (constraints {spec.constraints})\n")
    results = []
    for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
        config = FlowConfig(
            width=8, n_vectors=128, alpha=alpha, sa_table=table
        )
        result = run_flow(
            schedule, spec.constraints, "hlpower", config, registers, ports
        )
        results.append((alpha, result))
    table.save_if_dirty()

    peak = max(r.power.dynamic_power_mw for _, r in results)
    print(f"{'alpha':>5s}  {'power mW':>8s}  {'muxDiff':>7s}  "
          f"{'LUTs':>5s}  chart")
    for alpha, result in results:
        power = result.power.dynamic_power_mw
        bar = "#" * int(round(40 * power / peak))
        print(
            f"{alpha:5.2f}  {power:8.3f}  "
            f"{result.muxes.mux_diff_mean:7.2f}  "
            f"{result.area_luts:5d}  {bar}"
        )
    print(
        "\nalpha=0.5 is the paper's operating point: the SA term prunes "
        "high-activity merges while the muxDiff term keeps port loads "
        "balanced."
    )


if __name__ == "__main__":
    main()
